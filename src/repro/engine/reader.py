"""The tiered read engine: decimal→binary mirroring :class:`Engine`.

The paper's guarantee is a round trip — the shortest output must *read
back* to the same flonum — so the reader deserves the same treatment as
the printer: route each literal to the cheapest algorithm that can
certify the correctly rounded result, and fall back to the exact
big-integer path only when certification fails.

Tiers, tried in order for finite nonzero literals:

* a bounded LRU memo of recent conversions, shared with the write
  engine's memo when the :class:`ReadEngine` is obtained through
  :attr:`Engine.reader` (text keys cannot collide with the write side's
  integer keys);
* **Tier 0** — Clinger's Bellerophon exact-power window, generalized
  beyond binary64: when the significand fits the format and ``|q|`` is
  inside the per-format window where ``10**q`` is exactly representable
  (:attr:`FormatTables.read_max_pow10` — 22 for binary64, 10 for
  binary32, 4 for binary16), one small exact multiply/divide settles the
  conversion.  For binary64 the multiply is a single host-float
  operation (IEEE guarantees it correctly rounded); other formats use
  the same arithmetic over machine-word integers.  Decimal-magnitude
  clamps (:attr:`read_inf_exp10` / :attr:`read_zero_exp10`) settle
  overflowing and vanishing exponents here too, without constructing
  ``10**|q|``.
* **Tier 1** — a truncated/interval path in the Eisel–Lemire style
  (Mushtak & Lemire, *Fast Number Parsing Without Fallback*): keep the
  first 19 significant digits plus a sticky flag
  (:func:`repro.reader.truncated.truncate_significand`), bracket the
  value with the correctly rounded 64-bit power of ten
  (:func:`repro.fastpath.diyfp._pow10_diyfp`), and round both exact
  interval endpoints to the format.  When they agree, monotonicity of
  rounding certifies the result; otherwise the tier bails.
* **Tier 2** — the exact :func:`repro.reader.exact.round_rational`
  (always correct, never declines), fed the *untruncated* significand.

A fourth, optional lane — the Eisel–Lemire-style 128-bit product of
:mod:`repro.engine.lemire`, selected as ``"lemire"`` in
``tier_order=`` — resolves every untruncated literal outright (no
fallback; see docs/contenders.md).  The default order stays
``("tier0", "window")``; the contenders bench arbitrates.

The fast tiers run only for base-10 literals into radix-2 formats with
``precision <= READ_MAX_PRECISION`` under the two nearest reader modes
(``NEAREST_EVEN``/``NEAREST_UNKNOWN``, which read identically); every
other request goes straight to tier 2.  Negative values are converted by
magnitude with the sign applied at the end — for nearest modes the
magnitude rounding is the mirrored rounding, exactly as on the write
side.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from math import frexp as _frexp
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.rounding import ReaderMode
from repro import faults as _faults
from repro.errors import ParseError, RangeError, ReproError
from repro.fastpath.diyfp import _pow10_diyfp
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.reader.bellerophon import _MAX_EXACT_POW10, _MAX_SHIFT, _try_fast
from repro.reader.exact import clamp_extreme, round_rational
from repro.reader.parse import ParsedNumber, _scan_decimal, parse_decimal
from repro.reader.truncated import truncate_significand

from repro.engine.lemire import OVERFLOW as _LEMIRE_OVERFLOW
from repro.engine.lemire import lemire_parse
from repro.engine.tables import FormatTables, tables_for

__all__ = ["ReadEngine", "ReadResult", "default_read_engine", "read_many",
           "READ_STAT_KEYS", "READ_TIER_NAMES", "READ_TRUNCATION_DIGITS"]

#: Modes the fast tiers serve (they read identically; every other mode
#: routes straight to the exact tier, which handles all of them).
_NEAREST = (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN)

#: Significant digits the interval tier keeps: 19 is the most that
#: always fits a 64-bit word, so the endpoint products stay at two
#: machine words.
READ_TRUNCATION_DIGITS = 19

#: Longest literal worth memoizing.  Shortest binary64 output is <= 24
#: characters; anything much longer is either machine-generated noise
#: (unlikely to repeat) or adversarial, and keying the memo on it would
#: let one hostile input pin megabytes.
_MEMO_TEXT_LIMIT = 48

#: Sentinel returned by :func:`_round_nearest` when the rounded value
#: exceeds the format's finite range (IEEE nearest overflow → infinity).
_OVERFLOW = object()

#: 10**0 .. 10**20, for branch-free decimal digit counting.
_POW10 = tuple(10 ** k for k in range(21))

#: First integer with more than READ_TRUNCATION_DIGITS decimal digits.
_TRUNCATION_LIMIT = 10 ** READ_TRUNCATION_DIGITS

#: Exponent window of the binary64 host-float fast multiply
#: (:func:`repro.reader.bellerophon._try_fast`): exact powers of ten up
#: to 10**22, plus Clinger's digit-shift extension above.
_HOST_POW10_MIN = -_MAX_EXACT_POW10
_HOST_POW10_MAX = _MAX_EXACT_POW10 + _MAX_SHIFT

#: Flat cache of ``(2*Pf, pe - 1, exact)`` per decimal exponent — the
#: tier-1 working form of :func:`_pow10_diyfp`'s result, precomputed so
#: the hot loop skips the DiyFp attribute traffic.
_POW10_PARTS: dict = {}


def _pow10_parts(q: int) -> tuple:
    parts = _POW10_PARTS.get(q)
    if parts is None:
        power, exact = _pow10_diyfp(q)
        parts = _POW10_PARTS[q] = (power.f << 1, power.e - 1, exact)
    return parts


def _decimal_digits(d: int) -> int:
    """Number of decimal digits of ``d`` (positive, < 10**20).

    ``len(str(d))`` without the string: estimate from the bit length
    (30103/100000 over-approximates log10(2) by < 3e-7, so the estimate
    is ``floor(log10 d)`` or one more) and correct with one comparison.
    """
    est = d.bit_length() * 30103 // 100000
    return est + 1 if d >= _POW10[est] else est

#: The exact counter key set :meth:`ReadEngine.stats` returns — pinned
#: so :meth:`Engine.stats` can merge a zeroed copy before the reader is
#: ever built and schema tests can assert nothing drifts.
READ_STAT_KEYS = frozenset({
    "read_tier0_hits", "read_tier1_hits", "read_tier1_bailouts",
    "read_tier2_calls", "read_lemire_hits", "read_specials",
    "read_cache_hits", "read_cache_misses", "read_conversions",
    "read_tier_faults", "read_snapshot_faults",
})

#: Selectable read-side tier names for ``ReadEngine(tier_order=...)``:
#: the exact-power window + magnitude clamps (``"tier0"``), the
#: truncated/interval certification (``"window"``) and the
#: Eisel–Lemire 128-bit product lane (``"lemire"``).  The exact
#: rational tier is not in the list — it is the implicit, always-
#: present backstop at the end of every order.
READ_TIER_NAMES = ("tier0", "window", "lemire")


def _validated_read_order(order) -> tuple:
    names = tuple(order)
    seen = set()
    for name in names:
        if name not in READ_TIER_NAMES:
            raise RangeError(f"unknown read tier {name!r}; known: "
                             f"{', '.join(READ_TIER_NAMES)}")
        if name in seen:
            raise RangeError(f"duplicate read tier {name!r} in tier order")
        seen.add(name)
    return names


@dataclass(frozen=True)
class ReadResult:
    """A conversion plus which tier resolved it (for attribution)."""

    value: Flonum
    tier: str  # 'tier0'|'tier1'|'lemire'|'tier2'|'special'|'memo'


def _round_nearest(n: int, e2: int, sticky: bool, min_e: int, max_e: int,
                   prec: int, mantissa_limit: int):
    """Round the positive value ``n * 2**e2`` (+ sticky tail) to a format.

    ``sticky`` asserts the true value lies strictly inside
    ``(n, n + 1) * 2**e2``; rounding is IEEE nearest-even with denormal
    clamping.  Returns ``(f, t)`` (``f == 0`` means zero), the module
    :data:`_OVERFLOW` sentinel past the finite range, or ``None`` when a
    sticky tail cannot be absorbed (the kept bits are all significant —
    only reachable defensively; the tiers size their operands so the cut
    is at least one bit).
    """
    nb = n.bit_length()
    t = nb + e2 - prec
    if t < min_e:
        t = min_e
    shift = t - e2
    if shift <= 0:
        if sticky:
            return None
        f = n << -shift
    else:
        half = 1 << (shift - 1)
        cut = n & ((1 << shift) - 1)
        f = n >> shift
        if cut > half or (cut == half and (sticky or f & 1)):
            f += 1
            if f == mantissa_limit:
                f >>= 1
                t += 1
    if t > max_e:
        return _OVERFLOW
    return f, t


class ReadEngine:
    """A tiered correctly rounding reader with per-format tables.

    Instances are cheap; the per-format exact-power tables are shared
    process-wide through :func:`repro.engine.tables.tables_for`.  Each
    engine owns its statistics; the result memo is private by default
    but can be shared (``Engine.reader`` hands its own memo and lock in,
    so read and write conversions compete for one LRU budget).

    Args:
        tier0: Enable the exact-power fast path (and the magnitude
            clamps that ride on its tables).
        tier1: Enable the truncated/interval path.
        tier_order: Explicit lane order, a sequence over
            :data:`READ_TIER_NAMES` (``"tier0"``, ``"window"``,
            ``"lemire"``).  The exact rational tier is always the
            implicit final backstop, so ``()`` means exact-only.
            Overrides the ``tier0``/``tier1`` flags (which express the
            default order ``("tier0", "window")`` and its subsets);
            unknown or duplicate names raise :class:`RangeError`.
            Every order produces bit-identical values — only speed and
            stats attribution differ — so the memo needs no per-order
            keying.
        cache_size: Max entries in the result memo (0 disables it).
        strict: False (default): an unexpected non-:class:`ReproError`
            raised inside a fast tier falls back to the exact tier and
            counts a ``read_tier_faults``; True: re-raise (CI).
        snapshot: Optional warm-start source (path or
            :class:`repro.engine.snapshot.Snapshot`): restores the
            per-format tables and the snapshot's read-memo rows.  A
            rejected snapshot counts one ``read_snapshot_faults`` and
            the reader starts cold — never an exception, never wrong
            bits.
    """

    def __init__(self, tier0: bool = True, tier1: bool = True,
                 cache_size: int = 8192, strict: bool = False,
                 _shared_cache: Optional[dict] = None,
                 _shared_lock: Optional[threading.Lock] = None,
                 snapshot=None,
                 tier_order: Optional[Iterable[str]] = None):
        if cache_size < 0:
            raise RangeError("cache_size must be >= 0")
        if tier_order is None:
            order = ((("tier0",) if tier0 else ())
                     + (("window",) if tier1 else ()))
        else:
            order = _validated_read_order(tier_order)
        #: The configured lane order (exact tier implicit at the end).
        self.tier_order = order
        # Derived flags, kept because buffer.py's classify partitioning
        # (and the batch paths) branch on them directly.
        self.tier0 = "tier0" in order
        self.tier1 = "window" in order
        self.strict = strict
        self.cache_size = cache_size
        # Plain dict as LRU, insertion order = recency order (see
        # ``Engine._cache_get``); shared with the write engine's memo
        # when handed in through ``Engine.reader``.
        self._cache: dict = (
            _shared_cache if _shared_cache is not None else {})
        self._contexts: dict = {}
        self._lock = _shared_lock if _shared_lock is not None \
            else threading.Lock()
        # Not reset_stats(): when the memo/lock are shared through
        # ``Engine.reader`` the construction happens while the caller
        # already holds the (non-reentrant) lock.
        self._reset_stats_locked()
        #: Restore counts from the snapshot, or None (no snapshot given
        #: or it was rejected — see ``stats()["read_snapshot_faults"]``).
        self.snapshot_restored: Optional[dict] = None
        if snapshot is not None:
            self._load_snapshot(snapshot)

    def _load_snapshot(self, snapshot) -> None:
        import os as _os
        from repro.errors import SnapshotError
        from repro.engine import snapshot as _snapshot_mod
        try:
            snap = (snapshot if isinstance(snapshot, _snapshot_mod.Snapshot)
                    else _snapshot_mod.load_snapshot(_os.fspath(snapshot)))
            self.snapshot_restored = _snapshot_mod.apply_read_snapshot(
                self, snap)
        except SnapshotError:
            with self._lock:
                self._snapshot_faults += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every counter (the memo itself is left intact)."""
        with self._lock:
            self._reset_stats_locked()

    def _reset_stats_locked(self) -> None:
        self._tier0_hits = 0
        self._tier1_hits = 0
        self._tier1_bailouts = 0
        self._tier2_calls = 0
        self._lemire_hits = 0
        self._specials = 0
        self._tier_faults = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._snapshot_faults = 0

    def stats(self) -> dict:
        """Counters since the last :meth:`reset_stats`.

        Keys are exactly :data:`READ_STAT_KEYS`: ``read_tier0_hits``
        (exact-power window and magnitude clamps), ``read_tier1_hits`` /
        ``read_tier1_bailouts`` (the interval tier),
        ``read_lemire_hits`` (the no-fallback 128-bit product lane),
        ``read_tier2_calls`` (exact fallback), ``read_specials``
        (nan/inf/zero literals), ``read_cache_hits`` /
        ``read_cache_misses`` (the memo) and ``read_conversions``
        (every read, however resolved).

        The snapshot is taken under the engine lock and every counter
        mutation happens under the same lock (batch reads flush local
        tallies once per batch), so concurrent readers never observe a
        torn mid-batch state.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        return {
            "read_tier0_hits": self._tier0_hits,
            "read_tier1_hits": self._tier1_hits,
            "read_tier1_bailouts": self._tier1_bailouts,
            "read_tier2_calls": self._tier2_calls,
            "read_lemire_hits": self._lemire_hits,
            "read_specials": self._specials,
            "read_tier_faults": self._tier_faults,
            "read_cache_hits": self._cache_hits,
            "read_cache_misses": self._cache_misses,
            "read_snapshot_faults": self._snapshot_faults,
            "read_conversions": (self._tier0_hits + self._tier1_hits
                                 + self._lemire_hits + self._tier2_calls
                                 + self._specials + self._cache_hits),
        }

    def clear_cache(self) -> None:
        """Drop every memoized result (including the write engine's
        entries when the memo is shared through ``Engine.reader``)."""
        with self._lock:
            self._cache.clear()

    def _context(self, fmt: FloatFormat, mode: ReaderMode) -> tuple:
        """Intern one read context: ``(ctx_id, tables)``.

        The small-int ``ctx_id`` (never recycled) keys the memo; the
        :class:`FormatTables` ride along so the hot paths resolve them
        with one dict probe instead of one per conversion.
        """
        key = (id(fmt), mode)
        ctx = self._contexts.get(key)
        if ctx is None:
            with self._lock:
                ctx = self._contexts.get(key)
                if ctx is None:
                    ctx = (len(self._contexts), tables_for(fmt, 10))
                    self._contexts[key] = ctx
        return ctx

    # ------------------------------------------------------------------
    # The tiers
    # ------------------------------------------------------------------

    def _tier0(self, d: int, q: int, sign: int, tables: FormatTables,
               fmt: FloatFormat) -> Optional[Flonum]:
        """Exact-power window over exact integers: the signed result, or
        None.

        Requires the significand representable (``d < mantissa_limit``,
        checked by the caller) and ``|q|`` inside the window where
        ``10**q = 2**q * 5**q`` is exact in the format
        (:attr:`FormatTables.read_max_pow10`).  Inside it, one multiply
        (``q >= 0``) or one division with sticky remainder (``q < 0``)
        settles the conversion.  Serves the non-binary64 formats; for
        binary64 :meth:`_convert` uses the host-float multiply
        (:func:`repro.reader.bellerophon._try_fast`) directly.
        """
        w = tables.read_max_pow10
        if q < -w or q > w:
            return None
        prec = fmt.precision
        if q >= 0:
            r = _round_nearest(d * tables.read_pow5[q], q, False,
                               tables.min_e, tables.max_e, prec,
                               tables.mantissa_limit)
        else:
            den5 = tables.read_pow5[-q]
            # Scale so the quotient keeps >= prec + 2 bits: rounding then
            # always cuts at least one bit and the sticky remainder is
            # decisive.
            a = prec + 2 + den5.bit_length() - d.bit_length()
            if a < 0:
                a = 0
            quo, rem = divmod(d << a, den5)
            r = _round_nearest(quo, q - a, rem != 0, tables.min_e,
                               tables.max_e, prec, tables.mantissa_limit)
        if r is None:  # pragma: no cover - operands are sized above
            return None
        if r is _OVERFLOW:
            return Flonum.infinity(fmt, sign)
        f, t = r
        if f == 0:  # pragma: no cover - window floor is far above zero
            return Flonum.zero(fmt, sign)
        return Flonum._finite_trusted(sign, f, t, fmt)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def _convert(self, sign: int, d: int, q: int, fmt: FloatFormat,
                 mode: ReaderMode, tables: FormatTables
                 ) -> Tuple[Flonum, str, bool, bool]:
        """Route one finite literal ``(-1)**sign * d * 10**q`` through
        the configured lanes (:attr:`tier_order`), then the exact tier:
        ``(value, tier, tier1_bailed, tier_faulted)``.

        The fast-tier region is guard-railed: an unexpected exception
        (anything but a deliberate :class:`ReproError`) falls back to
        the exact tier with ``tier_faulted`` set instead of escaping,
        unless :attr:`strict`.

        Counter-free — the public entry points attribute the result
        under the engine lock so batch loops can run it lock-free and
        flush tallies once per batch.

        The engine's hot core — every public entry point (and the memo)
        funnels here with the format tables already resolved, and tier 1
        is inlined rather than factored out: at a few microseconds per
        conversion, call and attribute overhead is the budget.

        Tier 1 is the interval certification: ``d * 10**q`` (with at
        most ``d + 1`` when truncation left a sticky tail) is bracketed
        using the correctly rounded 64-bit power
        ``10**q = (Pf ± 1/2 ulp) * 2**pe``:

        ``value ∈ [lo, lo + w] * 2**(pe - 1)`` with
        ``lo = d*(2*Pf - u)`` and width ``w = 2*d*u`` (plus
        ``2*Pf + u`` when sticky), ``u = 0`` iff the power is exact.
        Only ``lo`` is formed as a big product — the width follows
        arithmetically.  When the cut-off bits of ``lo`` plus ``w``
        stay strictly on one side of the rounding midpoint, every value
        in the interval rounds identically (no tie is reachable) and
        the tier accepts with a single rounding; otherwise both
        endpoints are rounded exactly and the tier accepts iff they
        agree — rounding is monotone, so the true value in between
        rounds to the same float.  Everything else (the value is
        provably within one part in ~10^19 of a rounding boundary)
        bails to the exact tier.
        """
        if d == 0:
            return Flonum.zero(fmt, sign), "special", False, False
        bailed = False
        faulted = False
        if (self.tier_order and tables.read_fast_ok
                and (mode is ReaderMode.NEAREST_EVEN
                     or mode is ReaderMode.NEAREST_UNKNOWN)):
          try:
            if d < _TRUNCATION_LIMIT:
                d19 = d
                q19 = q
                sticky = False
                est = d.bit_length() * 30103 // 100000
                mag = q + (est + 1 if d >= _POW10[est] else est)
            else:
                d19, q19, sticky = truncate_significand(
                    d, q, READ_TRUNCATION_DIGITS)
                # Truncation keeps exactly 19 significant digits.
                mag = q19 + READ_TRUNCATION_DIGITS
            # Decimal magnitude: value ∈ [10**(mag-1), 10**mag).
            if mag - 1 >= tables.read_inf_exp10:
                return Flonum.infinity(fmt, sign), "tier0", False, False
            if mag <= tables.read_zero_exp10:
                return Flonum.zero(fmt, sign), "tier0", False, False
            mantissa_limit = tables.mantissa_limit
            for lane in self.tier_order:
              if lane == "tier0":
                if sticky or d19 >= mantissa_limit:
                    continue
                if _faults._PLAN is not None:
                    _faults._PLAN.fire("reader.tier0")
                if tables.read_host_float:
                    # One host-float multiply, correctly rounded by IEEE;
                    # the window gate saves the call when it cannot apply.
                    if _HOST_POW10_MIN <= q19 <= _HOST_POW10_MAX:
                        fast = _try_fast(d19, q19)
                        if fast is not None:
                            # The fast product is a normal binary64
                            # (magnitude within [1e-22, ~1e39]), so the
                            # frexp mantissa scaled to 53 bits is already
                            # the canonical (f, e) — no decompose needed.
                            m, ex = _frexp(fast)
                            return (Flonum._finite_trusted(
                                sign, int(m * 9007199254740992.0),
                                ex - 53, fmt), "tier0", bailed, False)
                else:
                    v = self._tier0(d19, q19, sign, tables, fmt)
                    if v is not None:
                        return v, "tier0", bailed, False
              elif lane == "window":
                if _faults._PLAN is not None:
                    _faults._PLAN.fire("reader.tier1")
                parts = _POW10_PARTS.get(q19)
                if parts is None:
                    parts = _pow10_parts(q19)
                pf2, e2, exact = parts
                min_e = tables.min_e
                max_e = tables.max_e
                prec = tables.precision
                if exact:
                    lo = d19 * pf2
                    w = (pf2 if sticky else 0)
                else:
                    lo = d19 * (pf2 - 1)
                    w = (d19 << 1) + (pf2 + 1 if sticky else 0)
                t = lo.bit_length() + e2 - prec
                if t < min_e:
                    t = min_e
                shift = t - e2
                if shift > 0:
                    half = 1 << (shift - 1)
                    cut = lo & ((half << 1) - 1)
                    cw = cut + w
                    f = lo >> shift
                    if cw < half:
                        pass  # whole interval rounds down, tie-free
                    elif cut > half and cw < (half << 1):
                        f += 1  # whole interval rounds up, tie-free
                        if f == mantissa_limit:
                            f >>= 1
                            t += 1
                    else:
                        f = -1  # a boundary is inside: certify exactly
                    if f >= 0:
                        if t > max_e:
                            return (Flonum.infinity(fmt, sign), "tier1",
                                    bailed, False)
                        if f == 0:
                            return (Flonum.zero(fmt, sign), "tier1",
                                    bailed, False)
                        return (Flonum._finite_trusted(sign, f, t, fmt),
                                "tier1", bailed, False)
                if shift <= 0 or f < 0:
                    r = _round_nearest(lo, e2, False, min_e, max_e, prec,
                                       mantissa_limit)
                    if w and r != _round_nearest(lo + w, e2, False, min_e,
                                                 max_e, prec,
                                                 mantissa_limit):
                        r = None
                    if r is not None:
                        if r is _OVERFLOW:
                            return (Flonum.infinity(fmt, sign), "tier1",
                                    bailed, False)
                        f, t = r
                        if f == 0:
                            return (Flonum.zero(fmt, sign), "tier1",
                                    bailed, False)
                        return (Flonum._finite_trusted(sign, f, t, fmt),
                                "tier1", bailed, False)
                    bailed = True
              elif not sticky:
                # The Lemire lane: gated on the untruncated significand
                # (d19 has < 20 digits whenever sticky is clear); once
                # it runs it decides outright — no bail path, the exact
                # tier is never consulted.
                if _faults._PLAN is not None:
                    _faults._PLAN.fire("reader.lemire")
                if not tables.lemire_ready:
                    tables.ensure_lemire()
                r = lemire_parse(d19, q19, tables)
                if r is None:  # pragma: no cover - clamps gate q
                    continue
                if r is _LEMIRE_OVERFLOW:
                    return (Flonum.infinity(fmt, sign), "lemire",
                            bailed, False)
                f, t = r
                if f == 0:
                    return (Flonum.zero(fmt, sign), "lemire",
                            bailed, False)
                return (Flonum._finite_trusted(sign, f, t, fmt),
                        "lemire", bailed, False)
          except ReproError:
            raise
          except Exception:
            if self.strict:
                raise
            bailed = False
            faulted = True
        clamped = clamp_extreme(d, q, fmt, mode, bool(sign))
        if clamped is not None:
            return clamped, "tier2", bailed, faulted
        num, den = (d * 10**q, 1) if q >= 0 else (d, 10**-q)
        value = round_rational(num, den, fmt, mode, negative=bool(sign))
        return value, "tier2", bailed, faulted

    def _convert_parsed(self, parsed: ParsedNumber, fmt: FloatFormat,
                        mode: ReaderMode, tables: FormatTables
                        ) -> Tuple[Flonum, str, bool, bool]:
        """:meth:`_convert` with the special literals peeled off."""
        special = parsed.special
        if special is not None:
            if special == "nan":
                return Flonum.nan(fmt), "special", False, False
            return (Flonum.infinity(fmt, parsed.sign), "special",
                    False, False)
        return self._convert(parsed.sign, parsed.digits, parsed.exponent,
                             fmt, mode, tables)

    def _bump_locked(self, tier: str, bailed: bool,
                     faulted: bool = False) -> None:
        """Attribute one conversion (caller holds the lock)."""
        if bailed:
            self._tier1_bailouts += 1
        if faulted:
            self._tier_faults += 1
        if tier == "tier0":
            self._tier0_hits += 1
        elif tier == "tier1":
            self._tier1_hits += 1
        elif tier == "lemire":
            self._lemire_hits += 1
        elif tier == "tier2":
            self._tier2_calls += 1
        else:
            self._specials += 1

    def read_parsed(self, parsed: ParsedNumber, fmt: FloatFormat = BINARY64,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN
                    ) -> ReadResult:
        """Route one already-parsed literal through the tiers."""
        value, tier, bailed, faulted = self._convert_parsed(
            parsed, fmt, mode, self._context(fmt, mode)[1])
        with self._lock:
            self._bump_locked(tier, bailed, faulted)
        return ReadResult(value, tier)

    def read_result(self, text: str, fmt: FloatFormat = BINARY64,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN
                    ) -> ReadResult:
        """Correctly rounded value of a literal, with tier attribution.

        Semantics identical to :func:`repro.reader.exact.read_decimal`
        (specials, ``#`` marks, :class:`ParseError` on malformed input);
        only the evaluation strategy differs.
        """
        if not isinstance(text, str):
            raise ParseError(f"expected a numeric string, got "
                             f"{type(text).__name__}")
        s = text.strip()
        ctx_id, tables = self._context(fmt, mode)
        key = None
        if self.cache_size and len(s) <= _MEMO_TEXT_LIMIT:
            key = (s, ctx_id)
            with self._lock:
                cache = self._cache
                hit = cache.get(key)
                if hit is not None:
                    self._cache_hits += 1
                    del cache[key]
                    cache[key] = hit
                else:
                    self._cache_misses += 1
            if hit is not None:
                return ReadResult(hit[0], "memo")
        scanned = _scan_decimal(s)
        if scanned is not None:
            value, tier, bailed, faulted = self._convert(
                scanned[0], scanned[1], scanned[2], fmt, mode, tables)
        else:
            value, tier, bailed, faulted = self._convert_parsed(
                parse_decimal(s), fmt, mode, tables)
        with self._lock:
            self._bump_locked(tier, bailed, faulted)
            if key is not None:
                cache = self._cache
                cache[key] = (value, tier)
                if len(cache) > self.cache_size:
                    del cache[next(iter(cache))]
        return ReadResult(value, tier)

    def read(self, text: str, fmt: FloatFormat = BINARY64,
             mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
        """Correctly rounded value of one literal — drop-in for
        :func:`repro.reader.exact.read_decimal`."""
        if not isinstance(text, str):
            raise ParseError(f"expected a numeric string, got "
                             f"{type(text).__name__}")
        s = text.strip()
        ctx_id, tables = self._context(fmt, mode)
        key = None
        if self.cache_size and len(s) <= _MEMO_TEXT_LIMIT:
            key = (s, ctx_id)
            with self._lock:
                cache = self._cache
                hit = cache.get(key)
                if hit is not None:
                    self._cache_hits += 1
                    del cache[key]
                    cache[key] = hit
                else:
                    self._cache_misses += 1
            if hit is not None:
                return hit[0]
        scanned = _scan_decimal(s)
        if scanned is not None:
            value, tier, bailed, faulted = self._convert(
                scanned[0], scanned[1], scanned[2], fmt, mode, tables)
        else:
            value, tier, bailed, faulted = self._convert_parsed(
                parse_decimal(s), fmt, mode, tables)
        with self._lock:
            self._bump_locked(tier, bailed, faulted)
            if key is not None:
                cache = self._cache
                cache[key] = (value, tier)
                if len(cache) > self.cache_size:
                    del cache[next(iter(cache))]
        return value

    def read_many(self, texts: Iterable[str], fmt: FloatFormat = BINARY64,
                  mode: ReaderMode = ReaderMode.NEAREST_EVEN
                  ) -> List[Flonum]:
        """Batch reads, amortizing per-call overhead.

        Semantically ``[self.read(t, fmt, mode) for t in texts]``, but
        the memo is probed for the whole batch under one lock
        acquisition, misses are converted outside the lock, and the new
        entries are installed (and all counters flushed) under one more
        — thousands of reads cost two lock round-trips instead of two
        each.  An empty batch touches no shared state at all, and with
        the memo disabled the whole batch takes a single acquisition
        (the counter flush).
        """
        texts = list(texts)
        for t in texts:
            if not isinstance(t, str):
                raise ParseError(f"expected a numeric string, got "
                                 f"{type(t).__name__}")
        stripped = [t.strip() for t in texts]
        if not stripped:
            return []
        ctx_id, tables = self._context(fmt, mode)
        out: List[Optional[Flonum]] = [None] * len(stripped)
        misses: List[int] = []
        push = misses.append
        if self.cache_size and self._cache:
            hits = 0
            cache = self._cache
            get = cache.get
            with self._lock:
                for i, s in enumerate(stripped):
                    if len(s) <= _MEMO_TEXT_LIMIT:
                        key = (s, ctx_id)
                        hit = get(key)
                        if hit is not None:
                            out[i] = hit[0]
                            del cache[key]
                            cache[key] = hit
                            hits += 1
                            continue
                    push(i)
                self._cache_hits += hits
        else:
            misses = range(len(stripped))  # type: ignore[assignment]
        convert = self._convert
        scan = _scan_decimal
        fresh = []
        memoize = fresh.append
        memo_on = bool(self.cache_size)
        new_misses = 0
        t0 = t1 = t1b = t2 = sp = lm = tf = 0
        for i in misses:
            s = stripped[i]
            scanned = scan(s)
            if scanned is not None:
                value, tier, bailed, faulted = convert(
                    scanned[0], scanned[1], scanned[2], fmt, mode, tables)
            else:
                value, tier, bailed, faulted = self._convert_parsed(
                    parse_decimal(s), fmt, mode, tables)
            if bailed:
                t1b += 1
            if faulted:
                tf += 1
            if tier == "tier0":
                t0 += 1
            elif tier == "tier1":
                t1 += 1
            elif tier == "lemire":
                lm += 1
            elif tier == "tier2":
                t2 += 1
            else:
                sp += 1
            out[i] = value
            if memo_on and len(s) <= _MEMO_TEXT_LIMIT:
                new_misses += 1
                memoize((s, value, tier))
        if fresh or misses:
            size = self.cache_size
            if len(fresh) > size:
                # A batch larger than the memo: sequential reads would
                # have evicted everything but the tail anyway, so
                # installing the head is pure churn — skip it.
                del fresh[:-size]
            cache = self._cache
            with self._lock:
                self._tier0_hits += t0
                self._tier1_hits += t1
                self._tier1_bailouts += t1b
                self._tier2_calls += t2
                self._lemire_hits += lm
                self._specials += sp
                self._tier_faults += tf
                self._cache_misses += new_misses
                for s, value, tier in fresh:
                    cache[(s, ctx_id)] = (value, tier)
                while size and len(cache) > size:
                    del cache[next(iter(cache))]
        return out  # type: ignore[return-value]


def default_read_engine() -> ReadEngine:
    """The process-wide read engine: the default write engine's
    :attr:`~repro.engine.engine.Engine.reader` (shared memo, merged
    stats)."""
    from repro.engine.engine import default_engine

    return default_engine().reader


def read_many(texts: Iterable[str], fmt: FloatFormat = BINARY64,
              mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> List[Flonum]:
    """Batch reads through the default read engine."""
    return default_read_engine().read_many(texts, fmt, mode)
