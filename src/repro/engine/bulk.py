"""Bulk columnar serialization and parsing over the tiered engines.

The scalar engines already make the conversion kernel cheap; at serving
scale the remaining costs are ingestion (unpacking values one
``struct.unpack`` at a time), duplicate traffic (real telemetry columns
repeat a small working set), and per-call dispatch.  This module
attacks all three:

* **Zero-copy columnar ingestion** — :func:`ingest_bits` normalizes any
  packed representation of a column (``bytes``/``bytearray``/
  ``memoryview`` of native-order IEEE encodings, ``array('d')``/
  ``array('f')``, numpy arrays via the buffer protocol — no numpy
  import needed — unsigned-integer views of raw bit patterns, or plain
  Python sequences) into a list of bit-pattern integers with one
  ``array.frombytes`` call over the whole buffer instead of a per-value
  ``struct.unpack``.
* **Dedup interning** — :func:`format_column` collapses the column to
  its distinct bit patterns first (``dict.fromkeys``, one C pass), runs
  the conversion kernel once per distinct value, and fans the results
  back out.  Keys are *bit patterns*, never float values: ``-0.0 ==
  0.0`` and ``nan != nan`` make float keys incorrect.
* **Batch emit** — :func:`format_bulk` renders into a reusable
  delimiter-terminated byte buffer
  (:class:`repro.serve.DelimitedWriter`), and ``jobs > 1`` shards the
  column across a :class:`repro.serve.BulkPool`.

Import discipline: :mod:`repro.serve` builds on this module, never the
reverse — the pool and writer are imported lazily inside the two entry
points that dispatch to them.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.rounding import ReaderMode, TieBreak
from repro.errors import DecodeError, RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.format.notation import DEFAULT_OPTIONS, NotationOptions

__all__ = [
    "ingest_bits",
    "bits_from_buffer",
    "pack_bits",
    "floats_from_bits64",
    "format_column",
    "format_bulk",
    "read_column",
    "read_bulk",
]

#: array typecode for each unsigned itemsize this platform provides
#: (probed, not assumed: 'L' is 4 bytes on Windows, 8 on LP64 Linux).
_TYPECODE_BY_SIZE = {}
for _tc in "BHILQ":
    _TYPECODE_BY_SIZE.setdefault(array(_tc).itemsize, _tc)

#: memoryview/struct format characters of typed float columns.
_FLOAT_VIEW_FORMATS = {"e": 2, "f": 4, "d": 8}

#: Unsigned-integer view formats accepted as pre-decoded bit patterns.
_UINT_VIEW_FORMATS = frozenset("BHILQ")

_BYTE_VIEW_FORMATS = frozenset({"B", "b", "c"})


def _itemsize(fmt: FloatFormat) -> int:
    if not fmt.has_encoding or fmt.total_bits % 8:
        raise DecodeError(
            f"format {fmt.name!r} has no byte-aligned bit encoding")
    return fmt.total_bits // 8


def _bits_from_bytes(buf, itemsize: int) -> List[int]:
    """Decode a packed native-order buffer into bit-pattern ints.

    One ``array.frombytes`` over the whole buffer when the platform has
    an unsigned typecode of the right width; an ``int.from_bytes``
    sweep over zero-copy slices otherwise.
    """
    if isinstance(buf, memoryview):
        # array.frombytes and int.from_bytes want byte-shaped input;
        # a cast is zero-copy, a non-contiguous view must be copied.
        buf = buf.cast("B") if buf.c_contiguous else buf.tobytes()
    nbytes = buf.nbytes if isinstance(buf, memoryview) else len(buf)
    count, rem = divmod(nbytes, itemsize)
    if rem:
        raise DecodeError(
            f"trailing partial value: {nbytes} bytes is not a multiple "
            f"of the {itemsize}-byte encoding")
    tc = _TYPECODE_BY_SIZE.get(itemsize)
    if tc is not None:
        a = array(tc)
        a.frombytes(buf)
        return a.tolist()
    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    fb = int.from_bytes
    bo = sys.byteorder
    return [fb(mv[i:i + itemsize], bo) for i in range(0, nbytes, itemsize)]


def bits_from_buffer(data, fmt: FloatFormat = BINARY64) -> List[int]:
    """Bit patterns of a packed column exposed through the buffer
    protocol (``bytes``, ``bytearray``, ``memoryview``, ``array``,
    numpy arrays, ...).

    Three view shapes are accepted:

    * **typed float views** (``'e'``/``'f'``/``'d'``: ``array('d')``,
      numpy ``float16/32/64``) — the item width must match ``fmt`` or
      the call raises :class:`DecodeError` rather than reinterpret;
    * **unsigned integer views** of the format's width (numpy
      ``uint64`` bit columns, ``array('Q')``) — taken as already
      decoded bit patterns;
    * **raw byte streams** (``bytes``/``bytearray``/byte views) —
      native-order packed encodings; a trailing partial value raises
      :class:`DecodeError`.
    """
    itemsize = _itemsize(fmt)
    try:
        mv = memoryview(data)
    except TypeError:
        raise DecodeError(
            f"{type(data).__name__!r} does not support the buffer "
            "protocol") from None
    vfmt = mv.format
    if vfmt in _FLOAT_VIEW_FORMATS:
        if mv.itemsize != itemsize:
            raise DecodeError(
                f"{mv.itemsize * 8}-bit float column fed to {fmt.name} "
                f"(expected {itemsize}-byte items)")
        return _bits_from_bytes(
            mv if mv.c_contiguous else mv.tobytes(), itemsize)
    if vfmt in _UINT_VIEW_FORMATS and mv.itemsize == itemsize \
            and vfmt not in _BYTE_VIEW_FORMATS:
        if mv.ndim != 1:
            mv = mv.cast("B").cast(vfmt)
        out = mv.tolist()
        limit = 1 << fmt.total_bits
        for b in out:
            if b >= limit:  # pragma: no cover - width-matched views fit
                raise DecodeError(f"bit pattern {b:#x} exceeds "
                                  f"{fmt.total_bits} bits")
        return out
    if vfmt in _BYTE_VIEW_FORMATS:
        return _bits_from_bytes(mv, itemsize)
    raise DecodeError(f"unsupported buffer item format {vfmt!r} "
                      f"for {fmt.name}")


def ingest_bits(data, fmt: FloatFormat = BINARY64) -> List[int]:
    """Normalize any supported column representation to bit patterns.

    Buffer-protocol objects go through :func:`bits_from_buffer`.  Plain
    sequences are accepted too: ``float`` elements (binary64 only —
    they carry no narrower encoding) are packed with one ``array('d')``
    pass so NaN payloads and signed zeros survive; ``int`` elements are
    taken as bit patterns and range-checked; :class:`Flonum` elements
    are encoded with :meth:`Flonum.to_bits`.
    """
    if isinstance(data, (bytes, bytearray, memoryview, array)):
        return bits_from_buffer(data, fmt)
    if not isinstance(data, (list, tuple)):
        try:
            return bits_from_buffer(data, fmt)
        except DecodeError:
            try:
                data = list(data)
            except TypeError as exc:
                raise DecodeError(
                    f"cannot ingest a column from "
                    f"{type(data).__name__!r}") from exc
    if not data:
        return []
    itemsize = _itemsize(fmt)
    first = data[0]
    if isinstance(first, float):
        if fmt is not BINARY64:
            raise DecodeError(
                "python floats are binary64; pass bit patterns or a "
                f"typed buffer for {fmt.name}")
        try:
            return _bits_from_bytes(array("d", data).tobytes(), itemsize)
        except TypeError as exc:
            raise DecodeError(
                "mixed column: float elements alongside "
                "non-floats") from exc
    if isinstance(first, int) and not isinstance(first, bool):
        limit = 1 << fmt.total_bits
        for b in data:
            if not isinstance(b, int) or b < 0 or b >= limit:
                raise DecodeError(
                    f"{b!r} is not a {fmt.total_bits}-bit pattern")
        return list(data)
    if isinstance(first, Flonum):
        return [v.to_bits() for v in data]
    raise DecodeError(
        f"cannot ingest a column of {type(first).__name__!r} elements")


def pack_bits(bits: Sequence[int], fmt: FloatFormat = BINARY64) -> bytes:
    """Pack bit patterns into a native-order byte column — the inverse
    of :func:`bits_from_buffer` (the result round-trips through
    :func:`ingest_bits`).  Shard transport and archival both use this:
    one ``array`` constructor for the whole column when the platform
    has a matching unsigned typecode.
    """
    itemsize = _itemsize(fmt)
    tc = _TYPECODE_BY_SIZE.get(itemsize)
    try:
        if tc is not None:
            return array(tc, bits).tobytes()
        bo = sys.byteorder  # pragma: no cover - every CPython has 2/4/8
        return b"".join(b.to_bytes(itemsize, bo) for b in bits)
    except (OverflowError, TypeError, ValueError) as exc:
        raise DecodeError(
            f"cannot pack column as {fmt.name}: {exc}") from None


def floats_from_bits64(bits: Sequence[int]) -> List[float]:
    """Bit patterns → Python floats, one buffer cast for the batch."""
    tc = _TYPECODE_BY_SIZE.get(8)
    if tc is not None:
        return memoryview(array(tc, bits).tobytes()).cast("d").tolist()
    from_bits = Flonum.from_bits  # pragma: no cover - no 8-byte typecode
    return [from_bits(b, BINARY64).to_float() for b in bits]


def _default_engine():
    from repro.engine.engine import default_engine

    return default_engine()


def _serial_engine(engine, snapshot, tiers=None):
    """The engine for a ``jobs == 1`` call: the caller's, or a fresh
    one when a snapshot or tier order was given (warming or re-routing
    the shared default engine would leak one call's configuration into
    every later caller)."""
    if engine is not None or (snapshot is None and tiers is None):
        return engine
    from repro.engine.engine import Engine

    kwargs = {} if tiers is None else {"tier_order": tiers[0],
                                       "read_tier_order": tiers[1]}
    return Engine(snapshot=snapshot, **kwargs)


def _format_bits(eng, bits: List[int], fmt: FloatFormat, mode: ReaderMode,
                 tie: TieBreak, options: Optional[NotationOptions]
                 ) -> List[str]:
    """Format a list of bit patterns through the scalar engine."""
    if fmt is BINARY64 and (options is None or options is DEFAULT_OPTIONS):
        return eng.format_many(floats_from_bits64(bits), mode=mode, tie=tie)
    from_bits = Flonum.from_bits
    fm = eng.format
    return [fm(from_bits(b, fmt), mode=mode, tie=tie, options=options,
               fmt=fmt) for b in bits]


def format_column(data, fmt: FloatFormat = BINARY64, *, engine=None,
                  mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                  tie: TieBreak = TieBreak.UP,
                  options: Optional[NotationOptions] = None,
                  dedup: bool = True) -> List[str]:
    """Shortest strings for a whole column, in input order.

    ``dedup=True`` (the default) collapses the column to its distinct
    bit patterns before touching the conversion kernel — on real
    telemetry-shaped corpora (heavily duplicated) this is the dominant
    throughput lever; on all-distinct data the two passes cost a few
    percent.  Output is byte-identical either way (and to the scalar
    engine), which ``repro.verify --bulk`` enforces.
    """
    eng = engine if engine is not None else _default_engine()
    bits = ingest_bits(data, fmt)
    if not bits:
        return []
    if dedup:
        interned = dict.fromkeys(bits)
        uniques = list(interned)
        for b, s in zip(uniques,
                        _format_bits(eng, uniques, fmt, mode, tie, options)):
            interned[b] = s
        return [interned[b] for b in bits]
    return _format_bits(eng, bits, fmt, mode, tie, options)


def format_bulk(data, fmt: FloatFormat = BINARY64, *, jobs: int = 1,
                delimiter: Union[bytes, str] = b"\n", engine=None,
                mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                tie: TieBreak = TieBreak.UP, dedup: bool = True,
                writer=None, deadline: Optional[float] = None,
                budget: Optional[float] = None, retries: int = 2,
                on_error: str = "degrade", snapshot=None,
                tiers=None) -> bytes:
    """Serialize a column to delimiter-terminated ASCII bytes.

    With ``jobs > 1`` the column is sharded across a
    :class:`repro.serve.BulkPool` (order-preserving; one engine per
    process worker) and ``deadline``/``budget``/``retries``/``on_error``
    configure its fault tolerance (see :class:`repro.serve.BulkPool`).
    ``writer`` may be a prepared :class:`repro.serve.DelimitedWriter`
    to reuse its buffer; its delimiter wins over ``delimiter``.
    ``snapshot`` (a path or :class:`repro.engine.snapshot.Snapshot`)
    warm-starts the workers — or, at ``jobs == 1`` with no ``engine``,
    the serial engine; a rejected snapshot degrades to a cold start and
    never changes output bytes.  ``tiers`` — a ``(write_order,
    read_order)`` pair of engine lane orders, or None for the default —
    routes the conversions through those tiers everywhere (pool
    workers, degraded rungs, the serial engine); output bytes are
    identical for every order.
    """
    if jobs > 1:
        from repro.serve.pool import BulkPool

        with BulkPool(jobs=jobs, fmt=fmt, mode=mode, tie=tie, dedup=dedup,
                      delimiter=delimiter, deadline=deadline,
                      budget=budget, retries=retries,
                      on_error=on_error, snapshot=snapshot,
                      tiers=tiers) as pool:
            payload = pool.format_bulk(data)
        if writer is not None:
            writer.write_bytes(payload)
            return writer.getvalue()
        return payload
    engine = _serial_engine(engine, snapshot, tiers)
    from repro.engine.buffer import format_buffer

    return format_buffer(data, fmt, delimiter=delimiter, mode=mode,
                         tie=tie, engine=engine, dedup=dedup,
                         writer=writer)


def _split_rows(data, delimiter: Union[bytes, str]) -> List[str]:
    """Rows of a delimited payload (one trailing terminator allowed).

    Thin wrapper over :func:`repro.engine.buffer.split_rows`, kept for
    the callers that still want ``str`` rows; the buffer pipeline
    itself never goes through here.  (Lazy import: :mod:`.buffer`
    builds on this module, never the reverse.)
    """
    from repro.engine.buffer import split_rows

    return split_rows(data, delimiter)


def read_column(texts, fmt: FloatFormat = BINARY64, *, engine=None,
                mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                delimiter: Union[bytes, str] = b"\n",
                dedup: bool = True) -> List[Flonum]:
    """Correctly rounded values for a column of literals, in order.

    ``texts`` may be a sequence of strings or a delimited ASCII payload
    (``bytes``/``str``, e.g. one produced by :func:`format_bulk`).
    ``dedup=True`` reads each distinct literal once.
    """
    eng = engine if engine is not None else _default_engine()
    if isinstance(texts, (bytes, bytearray, memoryview)):
        texts = _split_rows(texts, delimiter)
    elif isinstance(texts, str):
        texts = _split_rows(texts, delimiter)
    elif not isinstance(texts, list):
        texts = list(texts)
    if not texts:
        return []
    if dedup:
        interned = dict.fromkeys(texts)
        uniques = list(interned)
        for t, v in zip(uniques, eng.read_many(uniques, fmt, mode)):
            interned[t] = v
        return [interned[t] for t in texts]
    return eng.read_many(texts, fmt, mode)


def read_bulk(data, fmt: FloatFormat = BINARY64, *, out: str = "bits",
              jobs: int = 1, delimiter: Union[bytes, str] = b"\n",
              engine=None, mode: ReaderMode = ReaderMode.NEAREST_EVEN,
              dedup: bool = True, deadline: Optional[float] = None,
              budget: Optional[float] = None, retries: int = 2,
              on_error: str = "degrade", snapshot=None, tiers=None):
    """Parse a delimited payload (or sequence of literals) in bulk.

    ``out="bits"`` returns the packed result as bit-pattern ints —
    the columnar form ready for :func:`ingest_bits` round trips —
    ``out="flonums"`` the :class:`Flonum` values.  ``jobs > 1`` shards
    across a :class:`repro.serve.BulkPool`, with
    ``deadline``/``budget``/``retries``/``on_error`` configuring its
    fault tolerance.  ``snapshot`` warm-starts the workers (or the
    serial engine) and ``tiers`` routes the conversions through an
    explicit lane order, exactly as in :func:`format_bulk`.
    """
    if out not in ("bits", "flonums"):
        raise RangeError(f"out must be 'bits' or 'flonums', got {out!r}")
    if jobs > 1:
        from repro.serve.pool import BulkPool

        with BulkPool(jobs=jobs, fmt=fmt, mode=mode, dedup=dedup,
                      delimiter=delimiter, deadline=deadline,
                      budget=budget, retries=retries,
                      on_error=on_error, snapshot=snapshot,
                      tiers=tiers) as pool:
            return pool.read_bulk(data, out=out)
    engine = _serial_engine(engine, snapshot, tiers)
    if isinstance(data, (bytes, bytearray, memoryview, str)):
        # Delimited payloads take the byte-plane pipeline: no per-row
        # str, no per-row Flonum/to_bits when out="bits".
        from repro.engine.buffer import parse_buffer

        return parse_buffer(data, fmt, delimiter=delimiter, mode=mode,
                            out=out, engine=engine, dedup=dedup)
    values = read_column(data, fmt, engine=engine, mode=mode,
                         delimiter=delimiter, dedup=dedup)
    if out == "flonums":
        return values
    return [v.to_bits() for v in values]
