"""The tiered conversion engine: route each value to the cheapest
algorithm that can certify the correct shortest output.

Tiers, tried in order for positive finite values:

* a bounded LRU memo of recent conversions (repeated values are common
  in real traffic — column data, sensor streams, test corpora);
* **Tier 0** (:mod:`repro.engine.tier0`): integers and short exact
  decimals, certified with a few machine-word operations;
* **Tier 1** (:mod:`repro.engine.tier1`): Grisu3 over raw 64-bit
  integers with per-format precomputed powers; bails out on the ~0.5%
  of values it cannot certify;
* **Tier 2**: the exact Burger–Dybvig algorithm
  (:func:`repro.core.dragon.shortest_digits_scaled`) with the
  table-backed scaler — never wrong, never declines.

Every tier produces output byte-identical to Tier 2 for the same
reader mode and tie strategy; the test suite enforces this over the
Schryer and random corpora.  Tier 1 is only eligible under the two
nearest-reader assumptions its certification covers (``NEAREST_EVEN``
and ``NEAREST_UNKNOWN``); Tier 0 is mode-aware and eligible everywhere.

Two representation choices carry the throughput:

* the engine's internal currency is ``(k, body)`` pairs where ``body``
  is the digit *string* (no point, no sign).  Fast tiers accumulate
  digits into one integer and let ``str()`` render it at C speed;
  :func:`repro.format.notation.render_shortest_parts` accepts the
  string form directly, so no per-digit tuple is built on the hot path;
* for binary64 floats the ``(f, e)`` decomposition comes straight from
  ``math.frexp`` — a :class:`Flonum` is only constructed on the rare
  Tier 2 fallback.  (``frexp`` yields the canonical components for
  every normal value; subnormals are re-clamped to ``min_e``.)
"""

from __future__ import annotations

import os
import threading
from math import copysign, frexp
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.boundaries import adjust_for_mode, initial_scaled_value
from repro.core.digits import DigitResult
from repro.core.dragon import shortest_digits_scaled
from repro.core.fixed import FixedResult
from repro.core.fixed import fixed_digits as exact_paper_fixed
from repro.core.rounding import ReaderMode, TieBreak
from repro import faults as _faults
from repro.errors import RangeError, ReproError, SnapshotError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum, to_flonum
from repro.format.notation import (
    DEFAULT_OPTIONS,
    NotationOptions,
    render_shortest_parts,
    special_text,
)

from repro.engine.counted import counted_tier_digits
from repro.engine.reader import (READ_STAT_KEYS, READ_TIER_NAMES,
                                 ReadEngine, ReadResult)
from repro.engine.schubfach import schubfach_digits
from repro.engine.tables import FormatTables, tables_for
from repro.engine.tier0 import tier0_digits
from repro.engine.tier1 import tier1_digits

__all__ = ["Engine", "default_engine", "format_many", "STAT_KEYS",
           "WRITE_TIER_NAMES", "split_tier_names"]

Number = Union[float, int, Flonum]

#: Modes whose certification Tier 1 covers (Grisu success implies
#: byte-equality with the exact algorithm under either nearest-reader
#: assumption, for every tie strategy — enforced by the test suite).
_TIER1_MODES = (ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_UNKNOWN)

_DIGIT_CHARS = "0123456789abcdefghijklmnopqrstuvwxyz"

_TWO_P53 = float(1 << 53)
_INF = float("inf")

#: The exact key set :meth:`Engine.stats` returns, before and after any
#: :meth:`Engine.reset_stats` and whether or not the read engine has
#: been built — pinned by a schema test so counter consumers (benches,
#: dashboards) never ``KeyError`` on a fresh or reset engine.
STAT_KEYS = frozenset({
    "tier0_hits", "tier1_hits", "tier1_bailouts", "tier2_calls",
    "schubfach_hits", "fixed_tier1_hits", "fixed_tier1_bailouts",
    "fixed_tier2_calls", "fixed_conversions", "cache_hits",
    "cache_misses", "conversions", "cache_entries", "tier_faults",
    "hot_hits", "snapshot_faults", "bail_rate",
}) | READ_STAT_KEYS

#: Selectable write-side tier names for ``Engine(tier_order=...)``.
#: The exact Burger–Dybvig tier is not in the list: it is the implicit,
#: always-present backstop at the end of every order.
WRITE_TIER_NAMES = ("tier0", "grisu3", "schubfach")


def _validated_order(order, known: Tuple[str, ...], kind: str
                     ) -> Tuple[str, ...]:
    """Normalize a tier order to a tuple, rejecting unknown names and
    duplicates with a typed :class:`RangeError`."""
    names = tuple(order)
    seen = set()
    for name in names:
        if name not in known:
            raise RangeError(f"unknown {kind} tier {name!r}; known: "
                             f"{', '.join(known)}")
        if name in seen:
            raise RangeError(f"duplicate {kind} tier {name!r} in tier order")
        seen.add(name)
    return names


def split_tier_names(names: Iterable[str]
                     ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Split a mixed tier-name list (the CLI's ``--tiers``) into
    ``(tier_order, read_tier_order)``.

    ``tier0`` names the exact-decimal write tier and the exact-power
    read tier at once (the two tier-0s are siblings and always travel
    together); ``grisu3``/``schubfach`` are write-side; ``window`` /
    ``lemire`` are read-side.  Lanes not named are disabled — the exact
    tier always remains as the implicit backstop, so an empty list
    means exact-only in both directions.  Empty components are ignored;
    unknown names raise :class:`RangeError`.
    """
    write: List[str] = []
    read: List[str] = []
    for raw in names:
        name = raw.strip()
        if not name:
            continue
        if name == "tier0":
            write.append(name)
            read.append(name)
        elif name in ("grisu3", "schubfach"):
            write.append(name)
        elif name in ("window", "lemire"):
            read.append(name)
        else:
            raise RangeError(
                f"unknown tier {name!r}; known: tier0, grisu3, schubfach "
                f"(write) and tier0, window, lemire (read)")
    return (_validated_order(write, WRITE_TIER_NAMES, "write"),
            _validated_order(read, READ_TIER_NAMES, "read"))


class Engine:
    """A tiered shortest-conversion engine with per-format tables.

    Instances are cheap; the heavy per-format tables are shared
    process-wide (:func:`repro.engine.tables.tables_for`).  Each engine
    owns its result memo and its statistics, so ablations can run
    side-by-side::

        fast = Engine()
        exact = Engine(tier0=False, tier1=False, cache_size=0)

    Args:
        tier0: Enable the exact-decimal fast path.
        tier1: Enable the Grisu3 fast path.
        tier_order: Explicit write-side tier order, a sequence over
            :data:`WRITE_TIER_NAMES` (``"tier0"``, ``"grisu3"``,
            ``"schubfach"``).  The exact tier is always the implicit
            final backstop, so ``()`` means exact-only.  Overrides the
            ``tier0``/``tier1`` flags (which express the default order
            ``("tier0", "grisu3")`` and its subsets); unknown or
            duplicate names raise :class:`RangeError`.  Every order
            produces byte-identical output — only speed and stats
            attribution differ — so the memo needs no per-order keying.
        read_tier_order: Same for the read side, over
            :data:`repro.engine.reader.READ_TIER_NAMES` (``"tier0"``,
            ``"window"``, ``"lemire"``); handed to :attr:`reader` when
            it is built.  None keeps the reader's default.
        cache_size: Max entries in the result memo (0 disables it).
        fixed_tier1: Enable the counted-digit fast path for the
            fixed-format conversions (:meth:`counted_digits`,
            :meth:`fixed_digits`).
        strict: Guard-rail policy for unexpected fast-tier exceptions.
            False (production default): any non-:class:`ReproError`
            raised inside a tier-0/tier-1 region falls back to the
            exact tier-2 path and counts a ``tier_faults`` — a fast
            path is an optimization and never an excuse to crash.
            True (CI): re-raise, so injected faults and genuine tier
            bugs surface loudly.
        snapshot: Optional warm-start source — a path to a snapshot
            file or a :class:`repro.engine.snapshot.Snapshot` — whose
            tables, memo rows and hot-values dictionary are restored at
            construction.  A rejected snapshot (corrupt, stale, foreign
            format set) counts one ``snapshot_faults`` and the engine
            starts cold; it never raises and never yields wrong bytes.
    """

    def __init__(self, tier0: bool = True, tier1: bool = True,
                 cache_size: int = 8192, fixed_tier1: bool = True,
                 strict: bool = False, snapshot=None,
                 tier_order: Optional[Iterable[str]] = None,
                 read_tier_order: Optional[Iterable[str]] = None):
        if cache_size < 0:
            raise RangeError("cache_size must be >= 0")
        if tier_order is None:
            order = ((("tier0",) if tier0 else ())
                     + (("grisu3",) if tier1 else ()))
        else:
            order = _validated_order(tier_order, WRITE_TIER_NAMES, "write")
        #: The configured write-side lane order (exact tier implicit).
        self.tier_order = order
        # Derived flags, kept because the batch paths (and buffer.py on
        # the read side) branch on them directly.
        self.tier0 = "tier0" in order
        self.tier1 = "grisu3" in order
        if read_tier_order is not None:
            read_tier_order = _validated_order(read_tier_order,
                                               READ_TIER_NAMES, "read")
        #: Read-side order handed to :attr:`reader` (None = its default).
        self.read_tier_order = read_tier_order
        self.fixed_tier1 = fixed_tier1
        self.strict = strict
        self.cache_size = cache_size
        # Plain dict as LRU: insertion order is the recency order
        # (hits re-insert, eviction pops the oldest key).  A plain
        # dict beats OrderedDict measurably on the memo hot paths.
        self._cache: "Dict[tuple, Tuple[int, str]]" = {}
        # Memo keys are (f, e, ctx) with ctx a small int interning the
        # (format, base, mode, tie) combination — shorter tuples hash
        # measurably faster on the hot path than six-element ones.
        self._ctx_ids: dict = {}
        # Formats referenced by interned contexts, pinned for the
        # engine's lifetime: the intern key uses id(fmt), which CPython
        # recycles after garbage collection — without the pin a dead
        # format's context could be revived for an unrelated new format
        # and cross-serve memo entries.
        self._ctx_pins: list = []
        # The hot-values dictionary (never evicted; consulted after the
        # memo, before tier 0) and any attached shared-memory planes,
        # both keyed/selected by interned context.
        self._hot: "Dict[tuple, Tuple[int, str]]" = {}
        self._planes: dict = {}
        self._lock = threading.Lock()
        self._reader: Optional[ReadEngine] = None
        self.reset_stats()
        #: Restore counts from the snapshot, or None (no snapshot given
        #: or it was rejected — see ``stats()["snapshot_faults"]``).
        self.snapshot_restored: Optional[dict] = None
        if snapshot is not None:
            self._load_snapshot(snapshot)

    def _load_snapshot(self, snapshot) -> None:
        """Warm from a snapshot path or object; a rejected snapshot
        (missing, corrupt, stale, foreign format set) counts one
        ``snapshot_faults`` and leaves the engine cold — warm start is
        an optimization, never a correctness dependency."""
        from repro.engine import snapshot as _snapshot_mod
        try:
            snap = (snapshot if isinstance(snapshot, _snapshot_mod.Snapshot)
                    else _snapshot_mod.load_snapshot(os.fspath(snapshot)))
            self.snapshot_restored = _snapshot_mod.apply_snapshot(self, snap)
        except SnapshotError:
            with self._lock:
                self._snapshot_faults += 1

    def attach_hot_plane(self, plane) -> None:
        """Attach a validated shared-memory hot plane
        (:class:`repro.engine.snapshot.HotPlane`) for lock-free probes.

        The plane's context (format name, mode, tie, base) selects the
        one interned context it may serve; an unknown format raises
        :class:`SnapshotError` (callers count it and stay cold).
        """
        from repro.floats.formats import STANDARD_FORMATS
        from repro.engine.snapshot import bits_encoder
        fmt = STANDARD_FORMATS.get(plane.fmt_name)
        if fmt is None or not fmt.has_encoding:
            raise SnapshotError(
                f"hot plane names unusable format {plane.fmt_name!r}")
        try:
            mode = ReaderMode(plane.mode)
            tie = TieBreak(plane.tie)
        except ValueError as exc:
            raise SnapshotError(f"hot plane context invalid: {exc}") from exc
        ctx = self._ctx_id(fmt, plane.base, mode, tie)
        self._planes[ctx] = (plane, bits_encoder(fmt))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every counter (the memo itself is left intact).

        The key set of :meth:`stats` is unaffected: read-side counters
        are zeroed alongside (when the read engine exists) and merged as
        zeros otherwise, so ``stats()`` always returns exactly
        :data:`STAT_KEYS`.
        """
        with self._lock:
            self._reset_stats_locked()

    def _reset_stats_locked(self) -> None:
        self._tier0_hits = 0
        self._tier1_hits = 0
        self._tier1_bailouts = 0
        self._tier2_calls = 0
        self._schubfach_hits = 0
        self._fixed_tier1_hits = 0
        self._fixed_tier1_bailouts = 0
        self._fixed_tier2_calls = 0
        self._tier_faults = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._hot_hits = 0
        self._snapshot_faults = 0
        reader = getattr(self, "_reader", None)
        if reader is not None:
            # The read engine shares this engine's lock, which the
            # caller already holds — zero it without re-acquiring.
            reader._reset_stats_locked()

    def stats(self) -> dict:
        """Counters since the last :meth:`reset_stats`.

        Keys: ``tier0_hits``, ``tier1_hits``, ``tier1_bailouts``,
        ``tier2_calls``, ``schubfach_hits`` (the shortest/free-format
        tiers); ``bail_rate`` (derived, ``{"write": ..., "read": ...}``
        — per direction, the fraction of tier-routed conversions the
        exact tier resolved, 0.0 when none ran);
        ``fixed_tier1_hits``, ``fixed_tier1_bailouts``,
        ``fixed_tier2_calls`` (the counted/fixed-format tiers, shared by
        :meth:`counted_digits` and :meth:`fixed_digits`);
        ``cache_hits``/``cache_misses`` (the memo, shared by every
        conversion kind); ``hot_hits`` (the warm-start hot-values
        dictionary and any attached shared-memory plane);
        ``snapshot_faults`` (rejected snapshots and detached planes —
        each one a cold fallback, never wrong bytes); ``conversions``
        (every digit-generation request, however it was resolved);
        ``fixed_conversions`` (the fixed-format subset that missed the
        memo) and ``cache_entries`` (current memo population).

        When the read engine has been built (:attr:`reader`), its
        ``read_*`` counters are merged in; otherwise they appear as
        zeros.  The key set is always exactly :data:`STAT_KEYS`.

        The snapshot is consistent: every counter mutation happens under
        the engine lock (the batch APIs accumulate locally and flush
        once per batch), and this method reads the whole set under one
        acquisition — concurrent readers never observe a torn mid-batch
        state.
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        fixed = self._fixed_tier1_hits + self._fixed_tier2_calls
        reader = self._reader
        out = (reader._stats_locked() if reader is not None
               else dict.fromkeys(READ_STAT_KEYS, 0))
        # Derived bail-rate summary (the satellite consumers — bench and
        # daemon logs — stop recomputing it ad hoc): per direction, the
        # fraction of tier-routed conversions the exact tier had to
        # resolve.  Memo/hot hits and the fixed tiers are excluded —
        # they never reach the exact shortest path.
        write_den = (self._tier0_hits + self._tier1_hits
                     + self._schubfach_hits + self._tier2_calls)
        read_den = (out["read_tier0_hits"] + out["read_tier1_hits"]
                    + out["read_lemire_hits"] + out["read_tier2_calls"])
        out.update({
            "tier0_hits": self._tier0_hits,
            "tier1_hits": self._tier1_hits,
            "tier1_bailouts": self._tier1_bailouts,
            "tier2_calls": self._tier2_calls,
            "schubfach_hits": self._schubfach_hits,
            "fixed_tier1_hits": self._fixed_tier1_hits,
            "fixed_tier1_bailouts": self._fixed_tier1_bailouts,
            "fixed_tier2_calls": self._fixed_tier2_calls,
            "fixed_conversions": fixed,
            "tier_faults": self._tier_faults,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "hot_hits": self._hot_hits,
            "snapshot_faults": self._snapshot_faults,
            "conversions": (self._tier0_hits + self._tier1_hits
                            + self._schubfach_hits + self._tier2_calls
                            + fixed + self._cache_hits + self._hot_hits),
            "cache_entries": len(self._cache),
            "bail_rate": {
                "write": (self._tier2_calls / write_den
                          if write_den else 0.0),
                "read": (out["read_tier2_calls"] / read_den
                         if read_den else 0.0),
            },
        })
        return out

    def clear_cache(self) -> None:
        """Drop every memoized result."""
        with self._lock:
            self._cache.clear()

    def _ctx_id(self, fmt: FloatFormat, base: int,
                mode: "Union[ReaderMode, str]", tie: TieBreak) -> int:
        """Intern one conversion context as a small int (never recycled).

        ``mode`` is a :class:`ReaderMode` for shortest conversions and a
        kind string (``"cnt-rel"``, ``"fix-abs"``, ...) for the
        fixed-format ones — distinct contexts can never collide, and the
        fixed memo keys are 4-tuples besides.  Every interned format is
        pinned for the engine's lifetime so its ``id()`` can never be
        recycled onto a different format (which would let a stale
        context cross-serve another format's memo entries).
        """
        key = (id(fmt), base, mode, tie)
        ctx = self._ctx_ids.get(key)
        if ctx is None:
            with self._lock:
                ctx = self._ctx_ids.get(key)
                if ctx is None:
                    ctx = len(self._ctx_ids)
                    self._ctx_ids[key] = ctx
                    self._ctx_pins.append(fmt)
        return ctx

    # ------------------------------------------------------------------
    # The router
    # ------------------------------------------------------------------

    def _body_fe(self, f: int, e: int, fmt: FloatFormat, base: int,
                 mode: ReaderMode, tie: TieBreak,
                 v: Optional[Flonum] = None) -> Tuple[int, str]:
        """``(k, digit-string)`` for the positive finite ``f * radix**e``.

        ``v`` is the already-built Flonum if the caller has one; when
        None it is constructed only if Tier 2 is reached.
        """
        tables = tables_for(fmt, base)
        ctx = self._ctx_id(fmt, base, mode, tie)
        if self.cache_size:
            key = (f, e, ctx)
            hit = self._cache_get(key)
            if hit is not None:
                return hit
        else:
            key = None
        if self._hot:
            hit = self._hot.get((f, e, ctx))
            if hit is not None:
                with self._lock:
                    self._hot_hits += 1
                return hit
        if self._planes:
            hit = self._plane_probe(f, e, ctx)
            if hit is not None:
                return hit
        tier1_ok = (self.tier1 and tables.grisu_ok
                    and (mode is ReaderMode.NEAREST_EVEN
                         or mode is ReaderMode.NEAREST_UNKNOWN))
        result, tier, bailed, faulted = self._convert(
            f, e, fmt, base, mode, tie, tables, tier1_ok, v)
        with self._lock:
            if faulted:
                self._tier_faults += 1
            if bailed:
                self._tier1_bailouts += 1
            if tier == 0:
                self._tier0_hits += 1
            elif tier == 1:
                self._tier1_hits += 1
            elif tier == 3:
                self._schubfach_hits += 1
            else:
                self._tier2_calls += 1
            if key is not None:
                cache = self._cache
                cache[key] = result
                if len(cache) > self.cache_size:
                    del cache[next(iter(cache))]
        return result

    def _convert(self, f: int, e: int, fmt: FloatFormat, base: int,
                 mode: ReaderMode, tie: TieBreak, tables: FormatTables,
                 tier1_ok: bool, v: Optional[Flonum] = None
                 ) -> Tuple[Tuple[int, str], int, bool, bool]:
        """One uncached conversion: the configured lanes, then exact.

        Counter-free (callers attribute the result under the engine
        lock): returns ``((k, body), tier, tier1_bailed, tier_faulted)``
        with tier codes 0 = tier0, 1 = grisu3, 3 = schubfach, 2 = exact.
        The fast-tier region is guard-railed: anything unexpected it
        raises (a :class:`ReproError` is a deliberate signal and passes
        through) falls back to the exact path with ``tier_faulted``
        set, unless :attr:`strict`.
        """
        bailed = False
        faulted = False
        if base == 10 and tables.radix == 2:
            try:
                for lane in self.tier_order:
                    if lane == "tier0":
                        if _faults._PLAN is not None:
                            _faults._PLAN.fire("engine.tier0")
                        t0 = tier0_digits(f, e, tables.hidden_limit,
                                          tables.min_e,
                                          tables.mantissa_limit,
                                          tables.max_e, mode)
                        if t0 is not None:
                            acc, _nd, k = t0
                            return (k, str(acc)), 0, bailed, False
                    elif lane == "grisu3":
                        if not tier1_ok:
                            continue
                        if _faults._PLAN is not None:
                            _faults._PLAN.fire("engine.tier1")
                        t1 = tier1_digits(f, e, tables.hidden_limit,
                                          tables.min_e, tables.grisu_powers,
                                          tables.grisu_e_min)
                        if t1 is not None:
                            acc, nd, k = t1
                            body = str(acc)
                            if len(body) == nd:  # RoundWeed never borrows;
                                return (k, body), 1, bailed, False  # belt
                        bailed = True  # and braces anyway
                    elif (tables.grisu_ok
                          and (mode is ReaderMode.NEAREST_EVEN
                               or mode is ReaderMode.NEAREST_UNKNOWN)):
                        # The Schubfach lane: same format/mode gate as
                        # Grisu (falling through on other modes is
                        # gating, not bailing), but once it runs it
                        # decides every finite value — no bail path.
                        if _faults._PLAN is not None:
                            _faults._PLAN.fire("engine.schubfach")
                        if not tables.schub_ready:
                            tables.ensure_schub()
                        k, body = schubfach_digits(
                            f, e, tables,
                            mode is ReaderMode.NEAREST_EVEN and not f & 1,
                            tie)
                        return (k, body), 3, bailed, False
            except ReproError:
                raise
            except Exception:
                if self.strict:
                    raise
                bailed = False
                faulted = True
        if v is None:
            v = Flonum.finite(0, f, e, fmt)
        r, s, m_plus, m_minus = initial_scaled_value(v)
        sv = adjust_for_mode(v, r, s, m_plus, m_minus, mode)
        res = shortest_digits_scaled(sv, v, base, tie, tables.scale)
        return (res.k,
                "".join(_DIGIT_CHARS[d] for d in res.digits)), 2, bailed, \
            faulted

    # ------------------------------------------------------------------
    # Public conversions
    # ------------------------------------------------------------------

    def shortest_digits(self, x: Number, base: int = 10,
                        mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                        tie: TieBreak = TieBreak.UP,
                        fmt: FloatFormat = BINARY64) -> DigitResult:
        """Digit-level result (positive finite values only), as
        :class:`repro.core.digits.DigitResult` — drop-in for
        :func:`repro.core.dragon.shortest_digits`."""
        v = to_flonum(x, fmt)
        if not v.is_finite or v.is_zero or v.sign:
            raise RangeError("shortest_digits requires a positive finite value")
        k, body = self._body_fe(v.f, v.e, v.fmt, base, mode, tie, v)
        return DigitResult(k=k, digits=tuple(int(c, 36) for c in body),
                           base=base)

    # ------------------------------------------------------------------
    # Fixed-format conversions (counted tier with exact fallback)
    # ------------------------------------------------------------------

    def _plane_probe(self, f: int, e: int, ctx: int
                     ) -> Optional[Tuple[int, str]]:
        """Lock-free probe of an attached shared-memory hot plane.

        Guard-railed like the fast tiers: a plane that misbehaves
        (unmapped segment, torn state that survived the attach CRC) is
        detached and counted as a ``snapshot_faults`` — the probe is an
        optimization, never a crash (unless :attr:`strict`).
        """
        entry = self._planes.get(ctx)
        if entry is None:
            return None
        plane, to_bits = entry
        try:
            hit = plane.get(to_bits(f, e))
        except Exception:
            if self.strict:
                raise
            self._planes.pop(ctx, None)
            with self._lock:
                self._snapshot_faults += 1
            return None
        if hit is not None:
            with self._lock:
                self._hot_hits += 1
        return hit

    def _cache_get(self, key):
        # The whole lookup — get, LRU bump, counters — runs under the
        # lock: an unlocked recency bump can race a concurrent
        # eviction and drop or resurrect entries, so every memo read
        # and mutation is serialized, matching ``pow_cache``'s
        # discipline.
        with self._lock:
            cache = self._cache
            hit = cache.get(key)
            if hit is not None:
                self._cache_hits += 1
                del cache[key]
                cache[key] = hit
                return hit
            self._cache_misses += 1
        return None

    def _cache_put(self, key, value) -> None:
        with self._lock:
            cache = self._cache
            cache[key] = value
            if len(cache) > self.cache_size:
                del cache[next(iter(cache))]

    def _finish_fixed(self, key, result, fast: bool, bailed: bool,
                      faulted: bool = False) -> None:
        """Attribute one fixed-format conversion and memoize it, under a
        single lock acquisition (counters must never tear against a
        concurrent :meth:`stats`)."""
        with self._lock:
            if fast:
                self._fixed_tier1_hits += 1
            else:
                self._fixed_tier2_calls += 1
            if bailed:
                self._fixed_tier1_bailouts += 1
            if faulted:
                self._tier_faults += 1
            if key is not None:
                cache = self._cache
                cache[key] = result
                if len(cache) > self.cache_size:
                    del cache[next(iter(cache))]

    @staticmethod
    def _fixed_args(position, ndigits):
        if (position is None) == (ndigits is None):
            raise RangeError("give exactly one of position= or ndigits=")
        if ndigits is not None:
            if ndigits < 1:
                raise RangeError(f"ndigits must be >= 1, got {ndigits}")
            return "rel", ndigits
        return "abs", position

    def _counted_fast(self, v: Flonum, tables: FormatTables,
                      position: Optional[int], ndigits: Optional[int],
                      ) -> Optional[Tuple[int, int, int]]:
        """``(acc, nd, k)`` from the counted tier, position restored.

        Applies the absolute-mode carry fix-up (a carry past the first
        digit leaves the block one position short of ``position``; the
        carried value is exactly ``10**(k-1)``, so appending a zero is
        exact).  Returns None on any bailout.
        """
        got = counted_tier_digits(v.f, v.e, tables.grisu_powers,
                                  tables.grisu_e_min,
                                  ndigits=ndigits, position=position)
        if got is None:
            return None
        acc, nd, k = got
        if position is not None:
            if k - nd == position + 1:
                acc *= 10
                nd += 1
            if k - nd != position:  # pragma: no cover - defensive
                return None
        return acc, nd, k

    def counted_digits(self, x: Number, position: Optional[int] = None,
                       ndigits: Optional[int] = None, base: int = 10,
                       tie: TieBreak = TieBreak.EVEN,
                       fmt: FloatFormat = BINARY64) -> DigitResult:
        """Correctly rounded digits of the *exact* value of ``x`` at a
        counted position — drop-in for
        :func:`repro.baselines.naive_fixed.exact_fixed_digits` (the
        ``printf`` semantics): relative mode produces ``ndigits``
        significant digits, absolute mode rounds at weight
        ``base**position``.  Routed through the counted fast tier when
        it can certify the rounded block; exact big-integer fallback.

        The fast tier bails on every genuine tie, so its acceptances are
        valid for any ``tie`` strategy; ``tie`` only shapes the exact
        fallback (default even, matching IEEE-mode ``printf``).
        """
        v = to_flonum(x, fmt)
        if not v.is_finite or v.is_zero or v.sign:
            raise RangeError("counted_digits requires a positive finite value")
        kind, n = self._fixed_args(position, ndigits)
        key = None
        if self.cache_size:
            key = (v.f, v.e, n,
                   self._ctx_id(v.fmt, base, "cnt-" + kind, tie))
            hit = self._cache_get(key)
            if hit is not None:
                return hit
        result = None
        bailed = False
        faulted = False
        if self.fixed_tier1 and base == 10:
            tables = tables_for(v.fmt, base)
            if tables.grisu_ok:
                try:
                    if _faults._PLAN is not None:
                        _faults._PLAN.fire("engine.counted")
                    got = self._counted_fast(v, tables, position, ndigits)
                    if got is not None:
                        acc, _nd, k = got
                        result = DigitResult(
                            k=k, digits=tuple(int(c) for c in str(acc)),
                            base=base)
                    else:
                        bailed = True
                except ReproError:
                    raise
                except Exception:
                    if self.strict:
                        raise
                    faulted = True
        fast = result is not None
        if result is None:
            result = exact_fixed_digits(v, position=position,
                                        ndigits=ndigits, base=base, tie=tie)
        self._finish_fixed(key, result, fast, bailed, faulted)
        return result

    def fixed_digits(self, x: Number, position: Optional[int] = None,
                     ndigits: Optional[int] = None, base: int = 10,
                     tie: TieBreak = TieBreak.UP,
                     fmt: FloatFormat = BINARY64) -> FixedResult:
        """Paper Section 4 fixed format (``#`` marks) through the tiers
        — drop-in for :func:`repro.core.fixed.fixed_digits`.

        The counted tier serves a request only when Section 4's expanded
        rounding range is provably governed by the requested precision on
        both sides (:meth:`FormatTables.expansion_dominates`): there the
        paper's algorithm reduces to correct rounding of the exact value
        at the stop position with no ``#`` marks, which is exactly what
        the tier certifies.  Every other request — insignificant
        trailing positions, denormals, rounds-to-zero, wide bases —
        falls back to the exact integer implementation.
        """
        v = to_flonum(x, fmt)
        if not v.is_finite or v.is_zero or v.sign:
            raise RangeError("fixed_digits requires a positive finite value")
        kind, n = self._fixed_args(position, ndigits)
        key = None
        if self.cache_size:
            key = (v.f, v.e, n,
                   self._ctx_id(v.fmt, base, "fix-" + kind, tie))
            hit = self._cache_get(key)
            if hit is not None:
                return hit
        result = None
        bailed = False
        faulted = False
        if self.fixed_tier1 and base == 10:
            tables = tables_for(v.fmt, base)
            if (tables.grisu_ok
                    and not (v.f == tables.mantissa_limit - 1
                             and v.e == tables.max_e)):
                try:
                    if _faults._PLAN is not None:
                        _faults._PLAN.fire("engine.counted")
                    got = self._counted_fast(v, tables, position, ndigits)
                    if got is not None:
                        acc, nd, k = got
                        j = k - nd  # == position in absolute mode
                        if tables.expansion_dominates(j, v.e):
                            result = FixedResult(
                                k=k, digits=tuple(int(c) for c in str(acc)),
                                hashes=0, position=j, base=base)
                    if result is None:
                        bailed = True
                except ReproError:
                    raise
                except Exception:
                    if self.strict:
                        raise
                    bailed = False
                    faulted = True
        fast = result is not None
        if result is None:
            result = exact_paper_fixed(v, position=position,
                                       ndigits=ndigits, base=base, tie=tie)
        self._finish_fixed(key, result, fast, bailed, faulted)
        return result

    def format_fixed(self, x: Number, position: Optional[int] = None,
                     ndigits: Optional[int] = None,
                     decimals: Optional[int] = None,
                     base: int = 10, tie: TieBreak = TieBreak.UP,
                     style: str = "positional",
                     options: Optional[NotationOptions] = None) -> str:
        """Fixed-format string through this engine (signs/zeros/specials
        included) — :func:`repro.core.api.format_fixed` with
        ``engine=self``."""
        from repro.core.api import format_fixed

        return format_fixed(x, position=position, ndigits=ndigits,
                            decimals=decimals, base=base, tie=tie,
                            style=style, options=options, engine=self)

    def format(self, x: Number, base: int = 10,
               mode: ReaderMode = ReaderMode.NEAREST_EVEN,
               tie: TieBreak = TieBreak.UP,
               options: Optional[NotationOptions] = None,
               fmt: FloatFormat = BINARY64) -> str:
        """Shortest string for one value (signs/zeros/specials included)."""
        opts = options or DEFAULT_OPTIONS
        if type(x) is float and fmt is BINARY64:
            if x != x:
                return opts.nan_text
            if x == 0.0:
                body = "0.0" if opts.python_repr else "0"
                return "-" + body if copysign(1.0, x) < 0.0 else body
            if x < 0.0:
                sign, ax, vmode = "-", -x, mode.mirrored()
            else:
                sign, ax, vmode = "", x, mode
            if ax == _INF:
                return sign + opts.inf_text
            m, ex = frexp(ax)
            f = int(m * _TWO_P53)
            e = ex - 53
            if e < -1074:
                f >>= -1074 - e
                e = -1074
            k, digits = self._body_fe(f, e, BINARY64, base, vmode, tie)
            return sign + render_shortest_parts(digits, k, opts)
        v = to_flonum(x, fmt)
        if not v.is_finite:
            return special_text(v.is_nan, bool(v.sign), opts)
        if v.is_zero:
            body = "0.0" if opts.python_repr else "0"
            return "-" + body if v.sign else body
        if v.sign:
            v = v.abs()
            mode = mode.mirrored()
            sign = "-"
        else:
            sign = ""
        k, digits = self._body_fe(v.f, v.e, v.fmt, base, mode, tie, v)
        return sign + render_shortest_parts(digits, k, opts)

    def format_many(self, xs: Iterable[Number], base: int = 10,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                    tie: TieBreak = TieBreak.UP,
                    options: Optional[NotationOptions] = None,
                    fmt: FloatFormat = BINARY64) -> List[str]:
        """Shortest strings for a batch, amortizing per-call overhead.

        Semantically ``[self.format(x, ...) for x in xs]`` but with the
        routing state hoisted out of the loop and — for the default
        rendering options on binary64 — inlined decomposition and
        rendering, together worth roughly another 2x on uniform random
        doubles.

        Batch discipline: an empty batch touches no shared state (and
        no lock); a memo-disabled engine runs the whole loop lock-free
        and flushes its counters under one final acquisition; a batch
        larger than the memo installs only the entries sequential calls
        would have left behind instead of churning the whole LRU.
        """
        if not isinstance(xs, list):
            xs = list(xs)
        if not xs:
            return []
        opts = options or DEFAULT_OPTIONS
        if base == 10 and fmt is BINARY64 and opts is DEFAULT_OPTIONS:
            return self._format_many_fast(xs, mode, tie)
        return [self.format(x, base, mode, tie, opts, fmt) for x in xs]

    def _format_many_fast(self, xs: List[Number], mode: ReaderMode,
                          tie: TieBreak) -> List[str]:
        """Decimal binary64 batch loop, default options, all state hoisted.

        Counters accumulate in locals and flush under one lock at the
        end (so a concurrent :meth:`stats` never sees a torn mid-batch
        snapshot, and a memo-disabled engine takes exactly one lock per
        batch).  New conversions land in a batch-local ``pending`` dict
        — intra-batch duplicates are served from it without touching
        the shared memo — and are installed in one tail-capped pass.
        """
        fmt = BINARY64
        tables = tables_for(fmt, 10)
        hidden_limit = tables.hidden_limit
        min_e = tables.min_e
        mantissa_limit = tables.mantissa_limit
        max_e = tables.max_e
        grisu_powers = tables.grisu_powers
        grisu_e_min = tables.grisu_e_min
        use_tier0 = self.tier0
        mirrored = mode.mirrored()
        use_tier1 = (self.tier1 and tables.grisu_ok
                     and mode in _TIER1_MODES)
        use_tier1_mirrored = (self.tier1 and tables.grisu_ok
                              and mirrored in _TIER1_MODES)
        # The inlined tier block below encodes the default lane order;
        # any other order (schubfach present, or tiers reordered) routes
        # each miss through the generic ``_convert`` instead — memo,
        # render and flush stay batched either way.
        inline_tiers = self.tier_order in (
            ("tier0", "grisu3"), ("tier0",), ("grisu3",), ())
        cache = self._cache if self.cache_size else None
        cache_size = self.cache_size
        lock = self._lock
        ctx_pos = self._ctx_id(fmt, 10, mode, tie)
        ctx_neg = self._ctx_id(fmt, 10, mirrored, tie)
        hot = self._hot or None
        plane_pos = self._planes.get(ctx_pos) if self._planes else None
        plane_neg = self._planes.get(ctx_neg) if self._planes else None
        pending: Optional[dict] = {} if cache is not None else None
        plan = _faults._PLAN
        strict = self.strict
        c_hits = c_misses = t0_hits = t1_hits = t1_bails = t2_calls = 0
        t_faults = hot_hits = snap_faults = schub_hits = 0
        out: List[str] = []
        append = out.append
        for x in xs:
            # --- decompose (inline Flonum.from_float for plain floats) ---
            if type(x) is float:
                if x != x:
                    append("nan")
                    continue
                if x == 0.0:
                    append("-0" if copysign(1.0, x) < 0.0 else "0")
                    continue
                if x < 0.0:
                    sign = "-"
                    ax = -x
                    vmode = mirrored
                    tier1_ok = use_tier1_mirrored
                    ctx = ctx_neg
                    plane = plane_neg
                else:
                    sign = ""
                    ax = x
                    vmode = mode
                    tier1_ok = use_tier1
                    ctx = ctx_pos
                    plane = plane_pos
                if ax == _INF:
                    append(sign + "inf")
                    continue
                m, ex = frexp(ax)
                f = int(m * _TWO_P53)
                e = ex - 53
                if e < -1074:
                    f >>= -1074 - e
                    e = -1074
            else:
                # Ints, Flonums (possibly of another format): full route.
                append(self.format(x, 10, mode, tie, None, fmt))
                continue
            # --- route ---
            kb = None
            key = (f, e, ctx)
            if cache is not None:
                kb = pending.get(key)
                if kb is None:
                    with lock:
                        kb = cache.get(key)
                        if kb is not None:
                            del cache[key]
                            cache[key] = kb
                    if kb is not None:
                        # Intra-batch repeats of this key are served
                        # from the batch-local dict, lock-free (the
                        # tail install re-inserting a hit is just an
                        # LRU refresh).
                        pending[key] = kb
                if kb is not None:
                    c_hits += 1
                else:
                    c_misses += 1
            if kb is None and hot is not None:
                kb = hot.get(key)
                if kb is not None:
                    hot_hits += 1
            if kb is None and plane is not None:
                view, to_bits = plane
                try:
                    kb = view.get(to_bits(f, e))
                except Exception:
                    if strict:
                        raise
                    # Detach the misbehaving plane for both signs.
                    plane_pos = plane_neg = plane = None
                    snap_faults += 1
                    kb = None
                if kb is not None:
                    hot_hits += 1
            if kb is None and not inline_tiers:
                kb, tier_c, b_, f_ = self._convert(
                    f, e, fmt, 10, vmode, tie, tables, tier1_ok, None)
                if b_:
                    t1_bails += 1
                if f_:
                    t_faults += 1
                if tier_c == 0:
                    t0_hits += 1
                elif tier_c == 1:
                    t1_hits += 1
                elif tier_c == 3:
                    schub_hits += 1
                else:
                    t2_calls += 1
                if cache is not None:
                    pending[key] = kb
            elif kb is None:
                try:
                    # Pre-filter: tier 0 only ever accepts values with
                    # e >= -76 (integers and short exact decimals); skip
                    # the call for everything else.
                    if use_tier0 and e >= -76:
                        if plan is not None:
                            plan.fire("engine.tier0")
                        t0 = tier0_digits(f, e, hidden_limit, min_e,
                                          mantissa_limit, max_e, vmode)
                    else:
                        t0 = None
                    if t0 is not None:
                        t0_hits += 1
                        acc, _nd, k = t0
                        kb = (k, str(acc))
                    else:
                        kb = None
                        if tier1_ok:
                            if plan is not None:
                                plan.fire("engine.tier1")
                            t1 = tier1_digits(f, e, hidden_limit, min_e,
                                              grisu_powers, grisu_e_min)
                            if t1 is not None:
                                acc, nd, k = t1
                                body = str(acc)
                                if len(body) == nd:
                                    t1_hits += 1
                                    kb = (k, body)
                            if kb is None:
                                t1_bails += 1
                except ReproError:
                    raise
                except Exception:
                    if strict:
                        raise
                    t_faults += 1
                    kb = None
                if kb is None:
                    t2_calls += 1
                    v = Flonum.finite(0, f, e, fmt)
                    r, s, mp, mm = initial_scaled_value(v)
                    sv = adjust_for_mode(v, r, s, mp, mm, vmode)
                    res = shortest_digits_scaled(sv, v, 10, tie,
                                                 tables.scale)
                    kb = (res.k, "".join(_DIGIT_CHARS[d]
                                         for d in res.digits))
                if cache is not None:
                    pending[key] = kb
            k, body = kb
            # --- render (inline of render_shortest_parts: auto style,
            #     exp window (-4, 16], exp_char 'e', no grouping) ---
            if -4 < k <= 16:
                if k <= 0:
                    append(sign + "0." + "0" * -k + body)
                else:
                    nd = len(body)
                    if nd <= k:
                        append(sign + body + "0" * (k - nd))
                    else:
                        append(sign + body[:k] + "." + body[k:])
            else:
                rest = body[1:]
                if rest:
                    append(sign + body[0] + "." + rest + "e" + str(k - 1))
                else:
                    append(sign + body[0] + "e" + str(k - 1))
        with lock:
            self._cache_hits += c_hits
            self._cache_misses += c_misses
            self._tier0_hits += t0_hits
            self._tier1_hits += t1_hits
            self._tier1_bailouts += t1_bails
            self._tier2_calls += t2_calls
            self._schubfach_hits += schub_hits
            self._tier_faults += t_faults
            self._hot_hits += hot_hits
            self._snapshot_faults += snap_faults
            if pending:
                if len(pending) > cache_size:
                    # Oversized batch: sequential installs would have
                    # evicted everything but the tail — skip the churn.
                    items = list(pending.items())[-cache_size:]
                else:
                    items = pending.items()
                for key, kb in items:
                    cache[key] = kb
                while len(cache) > cache_size:
                    del cache[next(iter(cache))]
        return out

    # ------------------------------------------------------------------
    # The read side (decimal→binary through the tiered read engine)
    # ------------------------------------------------------------------

    @property
    def reader(self) -> ReadEngine:
        """This engine's :class:`~repro.engine.reader.ReadEngine`,
        built lazily on first use.

        The read engine shares this engine's memo and lock (text keys
        cannot collide with the write side's integer keys, so one LRU
        budget serves both directions) and its ``read_*`` counters are
        merged into :meth:`stats` / zeroed by :meth:`reset_stats`.
        """
        r = self._reader
        if r is None:
            with self._lock:
                r = self._reader
                if r is None:
                    r = ReadEngine(
                        cache_size=self.cache_size,
                        strict=self.strict,
                        tier_order=self.read_tier_order,
                        _shared_cache=self._cache if self.cache_size
                        else None,
                        _shared_lock=self._lock)
                    self._reader = r
        return r

    def read(self, text: str, fmt: FloatFormat = BINARY64,
             mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
        """Correctly rounded value of a decimal literal — drop-in for
        :func:`repro.reader.exact.read_decimal`, routed through the
        tiered read engine."""
        return self.reader.read(text, fmt, mode)

    def read_result(self, text: str, fmt: FloatFormat = BINARY64,
                    mode: ReaderMode = ReaderMode.NEAREST_EVEN
                    ) -> ReadResult:
        """Like :meth:`read` but returning the
        :class:`~repro.engine.reader.ReadResult` (value + tier)."""
        return self.reader.read_result(text, fmt, mode)

    def read_many(self, texts: Iterable[str], fmt: FloatFormat = BINARY64,
                  mode: ReaderMode = ReaderMode.NEAREST_EVEN
                  ) -> List[Flonum]:
        """Batch reads through the read engine (see
        :meth:`ReadEngine.read_many`)."""
        return self.reader.read_many(texts, fmt, mode)


_default_engine: Optional[Engine] = None
_default_lock = threading.Lock()


def default_engine() -> Engine:
    """The process-wide engine behind :func:`repro.core.api.format_shortest`."""
    global _default_engine
    eng = _default_engine
    if eng is None:
        with _default_lock:
            eng = _default_engine
            if eng is None:
                eng = Engine()
                _default_engine = eng
    return eng


def format_many(xs: Iterable[Number], base: int = 10,
                mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                tie: TieBreak = TieBreak.UP,
                options: Optional[NotationOptions] = None,
                fmt: FloatFormat = BINARY64) -> List[str]:
    """Batch shortest formatting through the default engine."""
    return default_engine().format_many(xs, base, mode, tie, options, fmt)
