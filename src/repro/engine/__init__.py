"""Tiered conversion engine: fast-path router, batch API, per-format tables.

Public surface:

* :class:`Engine` — a router over three tiers (exact-decimal fast path,
  raw-integer Grisu3, exact Burger–Dybvig) with a bounded result memo
  and per-tier statistics;
* :func:`default_engine` — the shared instance the string API delegates
  to;
* :func:`format_many` — batch conversion through the default engine;
* :func:`tables_for` / :class:`FormatTables` — the per-format
  precomputed state (power tables, estimator constants, Grisu powers).

This package must not import :mod:`repro.core.api` (the API imports us).
"""

from repro.engine.engine import Engine, default_engine, format_many
from repro.engine.tables import FormatTables, clear_tables, tables_for

__all__ = [
    "Engine",
    "default_engine",
    "format_many",
    "FormatTables",
    "tables_for",
    "clear_tables",
]
