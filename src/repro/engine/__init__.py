"""Tiered conversion engine: fast-path router, batch API, per-format tables.

Public surface:

* :class:`Engine` — a router over three tiers (exact-decimal fast path,
  raw-integer Grisu3, exact Burger–Dybvig) with a bounded result memo
  and per-tier statistics;
* :class:`ReadEngine` — the mirror-image read router (exact-power
  Bellerophon window, truncated/interval certification, exact
  ``round_rational`` fallback), reachable per-engine as
  :attr:`Engine.reader`;
* :func:`schubfach_digits` / :func:`lemire_parse` — the contender
  lanes (never-bail Schubfach writer, no-fallback Eisel–Lemire
  reader), selectable through ``tier_order=`` /
  :func:`split_tier_names` (see docs/contenders.md);
* :func:`default_engine` / :func:`default_read_engine` — the shared
  instances the string APIs delegate to;
* :func:`format_many` / :func:`read_many` — batch conversion through
  the default engines;
* :func:`tables_for` / :class:`FormatTables` — the per-format
  precomputed state (power tables, estimator constants, Grisu powers,
  exact-pow10 read windows);
* :func:`parse_buffer` / :func:`format_buffer` /
  :func:`split_plane` / :func:`split_rows` — the byte-plane pipeline
  (:mod:`repro.engine.buffer`): whole delimited buffers in and out,
  measured in MB/s, never a per-row string.

This package must not import :mod:`repro.core.api` (the API imports us).
"""

from repro.engine.buffer import (
    format_buffer,
    parse_buffer,
    split_plane,
    split_rows,
)
from repro.engine.engine import (
    STAT_KEYS,
    WRITE_TIER_NAMES,
    Engine,
    default_engine,
    format_many,
    split_tier_names,
)
from repro.engine.lemire import lemire_parse
from repro.engine.reader import (
    READ_STAT_KEYS,
    READ_TIER_NAMES,
    ReadEngine,
    ReadResult,
    default_read_engine,
    read_many,
)
from repro.engine.schubfach import schubfach_digits
from repro.engine.snapshot import (
    SNAPSHOT_VERSION,
    HotPlane,
    Snapshot,
    apply_read_snapshot,
    apply_snapshot,
    bits_encoder,
    build_snapshot,
    hot_entries,
    load_snapshot,
    save_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
)
from repro.engine.tables import FormatTables, clear_tables, tables_for

__all__ = [
    "Engine",
    "default_engine",
    "format_many",
    "ReadEngine",
    "ReadResult",
    "default_read_engine",
    "read_many",
    "STAT_KEYS",
    "READ_STAT_KEYS",
    "WRITE_TIER_NAMES",
    "READ_TIER_NAMES",
    "split_tier_names",
    "schubfach_digits",
    "lemire_parse",
    "FormatTables",
    "tables_for",
    "clear_tables",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "build_snapshot",
    "load_snapshot",
    "save_snapshot",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "apply_snapshot",
    "apply_read_snapshot",
    "hot_entries",
    "HotPlane",
    "bits_encoder",
    "parse_buffer",
    "format_buffer",
    "split_plane",
    "split_rows",
]
