"""Eisel–Lemire-style reader lane: 128-bit product, no fallback.

The interval tier (:mod:`repro.engine.reader` tier 1) brackets
``d * 10**q`` with a 64-bit power of ten and *bails* to the exact
rational path when the bracket straddles a rounding boundary (~0.01% of
literals).  Eisel–Lemire widen the product to 128 bits; Mushtak & Lemire
("Fast Number Parsing Without Fallback") prove that with the wider
product the ambiguous band is empty for any binary64 input of at most 17
significant digits — and the same argument bounds binary32 at 9 and
binary16 at 5 digits (``FloatFormat.decimal_digits_to_distinguish``,
stored per format as ``lemire_max_digits``).

This module reproduces that lane over Python integers with the table
from :meth:`repro.engine.tables.FormatTables.ensure_lemire`.  For
``10**q = (g - eps) * 2**(a-127)`` (``g`` the 128-bit ceiling
significand, ``eps in [0, 1)``) the product ``P = d * g`` localizes the
value in ``(P - d, P] * 2**(a-127)``:

* when the power is exact (``eps == 0``) the value *is* ``P``, rounded
  nearest-even directly;
* otherwise the interval endpoints' fraction bits decide: strictly
  above the rounding midpoint → up, at or below it → down, both
  tie-free (the value is a strict inner point);
* only when the midpoint falls strictly inside the interval does the
  lane perform one exact big-integer comparison against it — the case
  the Mushtak–Lemire proof makes unreachable within the certified digit
  counts.  The lane stays unconditionally correct without leaning on
  the proof, and never consults the tier-2 rational path: the
  ``repro.verify --contenders`` battery asserts 0 tier-2 entries on
  certified-range corpora.

The interval can straddle the floor grid point itself (``rem < d``) —
there ``d < half`` (the product keeps at least ``127 - precision``
excess bits) collapses both floor outcomes to the same rounded result,
so the straddle needs no extra handling.  Straddling a binade boundary
is equally harmless: the value sits within ``d * 2**(a-127)`` of the
power of two, far inside the nearest rounding grid on either side.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.engine.tables import FormatTables

__all__ = ["OVERFLOW", "lemire_parse"]

#: Sentinel return: the correctly rounded magnitude exceeds the finite
#: range (round-to-nearest overflow — the caller makes an infinity).
OVERFLOW = object()


def lemire_parse(d: int, q: int, tables: FormatTables
                 ) -> Union[None, object, Tuple[int, int]]:
    """Correctly rounded ``(f, t)`` for the positive value ``d * 10**q``.

    ``d`` must be the untruncated significand (no sticky tail) with
    fewer than 20 decimal digits — the caller skips the lane otherwise.
    Returns ``(f, t)`` with ``f == 0`` meaning underflow to zero,
    :data:`OVERFLOW` past the finite range, or None when ``q`` is
    outside the table (defensive: the magnitude clamps settle those
    exponents before any lane runs).  Rounding is nearest-even, the
    shared semantics of the two nearest reader modes.

    The caller is responsible for :meth:`FormatTables.ensure_lemire`.
    """
    idx = q - tables.lemire_q_min
    powers = tables.lemire_powers
    if idx < 0 or idx >= len(powers):  # pragma: no cover - clamps gate q
        return None
    g, a, exact = powers[idx]
    p = d * g
    # Target exponent from the product's magnitude (the true value can
    # sit one bit lower; see the module notes on binade straddle).
    t = p.bit_length() + a - 127 - tables.precision
    min_e = tables.min_e
    if t < min_e:
        t = min_e
    shift = t - (a - 127)
    f0 = p >> shift
    rem = p & ((1 << shift) - 1)
    half = 1 << (shift - 1)
    if exact:
        # The value is exactly p * 2**(a-127): plain nearest-even.
        if rem > half or (rem == half and f0 & 1):
            f0 += 1
    else:
        lo_rem = rem - d
        if lo_rem >= half:
            # Even the interval's low end clears the midpoint: the
            # value is strictly above it (it exceeds the low end).
            f0 += 1
        elif rem <= half:
            # The high end is at or below the midpoint, and the value
            # is strictly below the high end: round down, tie-free.
            # (Covers rem < d too: d < half makes both floor outcomes
            # round to f0.)
            pass
        else:
            # lo_rem in (0, half) and rem > half: the midpoint is
            # strictly inside the interval.  One exact comparison of
            # d * 10**q against the midpoint settles it; equality is a
            # genuine tie, broken to even.
            m = (f0 << shift) + half
            x = a - 127
            lhs, rhs = d, m
            if q >= 0:
                lhs *= 10**q
            else:
                rhs *= 10**-q
            if x >= 0:
                rhs <<= x
            else:
                lhs <<= -x
            if lhs > rhs or (lhs == rhs and f0 & 1):
                f0 += 1
    if f0 == tables.mantissa_limit:
        f0 >>= 1
        t += 1
    if t > tables.max_e:
        return OVERFLOW
    return f0, t
