"""Per-format precomputed conversion state (the engine's warm data).

``format_shortest`` as shipped by the seed repo re-derives everything per
call: the scaling estimator re-reads ``log_ratio``, ``B**k`` lookups for
wide formats (binary128) miss the paper's 326-entry base-10 table and fall
into a dict memo, and the Grisu fast path re-runs a ``ceil``/adjustment
search for its cached power of ten on every conversion.  A
:class:`FormatTables` instance does all of that work once per
``(FloatFormat, base)`` pair:

* ``powers`` — ``base**k`` for every ``k`` the scaler can request for this
  format, as a flat list (O(1) indexed, no hashing, never evicts);
* ``grisu_powers`` — for radix-2 formats with ``precision <= 62``, the
  correctly rounded 64-bit power of ten for *every normalized binary
  exponent* the format can produce, so Tier 1 is a single list index;
* the estimator constant ``log_ratio(radix, base)`` and the boundary
  constants (``hidden_limit``, ``min_e``, ``max_e``) as plain attributes.

Tables build lazily on first use of a format and are shared process-wide
(guarded by a lock; the tables themselves are immutable once built).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from repro.bignum.pow_cache import log_ratio
from repro.core.boundaries import ScaledValue
from repro.core.scaling import FIXUP_EPSILON, _too_high, _too_low
from repro.errors import RangeError
from repro.fastpath.diyfp import cached_power_for_binary_exponent
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum

__all__ = ["FormatTables", "tables_for", "clear_tables", "install_tables"]

#: Widest significand the 64-bit Grisu tier can certify (matches
#: :func:`repro.fastpath.grisu.grisu_shortest`).
GRISU_MAX_PRECISION = 62

#: Widest significand the read engine's fast tiers serve.  The interval
#: tier rounds ~128-bit products down to ``precision + 2`` bits, so any
#: precision below the product width works; capped to match the write
#: side's Grisu limit for symmetry (binary128 and x87-80 read exactly).
READ_MAX_PRECISION = GRISU_MAX_PRECISION


def _pow10_ge(a: int, m: int, b: int) -> bool:
    """Exact ``10**a >= m * 2**b`` for positive integer ``m``."""
    lhs, rhs = 1, m
    if a >= 0:
        lhs *= 10**a
    else:
        rhs *= 10**-a
    if b >= 0:
        rhs <<= b
    else:
        lhs <<= -b
    return lhs >= rhs


def _le_pow10(a: int, b: int) -> bool:
    """Exact ``10**a <= 2**b``."""
    if a >= 0:
        return b >= 0 and 10**a <= 1 << b
    if b >= 0:
        return True  # 10**a < 1 <= 2**b
    return (1 << -b) <= 10**-a


class FormatTables:
    """Immutable precomputed state for one ``(FloatFormat, base)`` pair."""

    __slots__ = (
        "fmt", "base", "ratio", "hidden_limit", "min_e", "max_e",
        "mantissa_limit", "precision", "radix", "powers", "power_limit",
        "grisu_ok", "grisu_powers", "grisu_e_min",
        "read_fast_ok", "read_host_float", "read_max_pow10", "read_pow5",
        "read_inf_exp10", "read_zero_exp10",
    )

    def __init__(self, fmt: FloatFormat, base: int,
                 _grisu_state: Optional[Tuple[int, List[Tuple[int, int, int]]]]
                 = None):
        if base < 2 or base > 36:
            raise RangeError(f"output base must be in 2..36, got {base}")
        self.fmt = fmt
        self.base = base
        self.radix = fmt.radix
        self.ratio = log_ratio(fmt.radix, base)
        self.hidden_limit = fmt.hidden_limit
        self.mantissa_limit = fmt.mantissa_limit
        self.precision = fmt.precision
        self.min_e = fmt.min_e
        self.max_e = fmt.max_e
        # Largest |k| the estimator can produce for this format: the
        # decimal (base-B) magnitude of the largest/smallest values, plus
        # slack for the fixup and the pre-multiplication.
        span = max(abs(fmt.min_e) + fmt.precision,
                   abs(fmt.max_e) + fmt.precision)
        self.power_limit = int(math.ceil(span * self.ratio)) + 4
        powers: List[int] = []
        acc = 1
        for _ in range(self.power_limit + 1):
            powers.append(acc)
            acc *= base
        self.powers = powers
        # Tier-1 eligibility and its per-binary-exponent power list.
        self.grisu_ok = (base == 10 and fmt.radix == 2
                         and fmt.precision <= GRISU_MAX_PRECISION)
        if self.grisu_ok:
            if _grisu_state is not None:
                self.grisu_e_min, self.grisu_powers = _grisu_state
            else:
                self.grisu_e_min, self.grisu_powers = \
                    self._build_grisu_powers()
        else:
            self.grisu_e_min, self.grisu_powers = 0, []
        # Read-engine eligibility and its per-format exact-power state.
        self.read_fast_ok = (base == 10 and fmt.radix == 2
                             and fmt.precision <= READ_MAX_PRECISION)
        self.read_host_float = False
        self.read_max_pow10 = 0
        self.read_pow5: List[int] = [1]
        self.read_inf_exp10 = 0
        self.read_zero_exp10 = 0
        if self.read_fast_ok:
            self._build_read_tables()

    def _build_read_tables(self) -> None:
        """Exact-power tables and decimal-magnitude clamps for reading.

        ``read_max_pow10`` is the largest ``k`` with ``5**k`` (hence
        ``10**k = 2**k * 5**k``) exactly representable in ``precision``
        bits — Clinger's exact-power window, generalized per format (22
        for binary64, 10 for binary32, 4 for binary16).  ``read_pow5``
        holds ``5**0 .. 5**read_max_pow10``.

        ``read_inf_exp10`` is the smallest ``I`` such that any value
        ``>= 10**I`` rounds to infinity under round-to-nearest (at or
        above the overflow midpoint ``(2**(p+1) - 1) * 2**(max_e - 1)``);
        ``read_zero_exp10`` the largest ``Z`` such that any value
        ``<= 10**Z`` rounds to zero (at or below half the smallest
        denormal, ``2**(min_e - 1)``).  Both are certified by exact
        integer comparison at build time, so the read engine can settle
        extreme exponents without constructing ``10**|q|``.
        """
        fmt = self.fmt
        self.read_host_float = fmt is BINARY64 or fmt == BINARY64
        pow5, acc = [1], 1
        while acc * 5 < self.mantissa_limit:
            acc *= 5
            pow5.append(acc)
        self.read_max_pow10 = len(pow5) - 1
        self.read_pow5 = pow5
        p, max_e, min_e = fmt.precision, self.max_e, self.min_e
        mid_f, mid_e = (1 << (p + 1)) - 1, max_e - 1
        i = math.ceil(math.log10(mid_f) + mid_e * math.log10(2.0))
        while _pow10_ge(i - 1, mid_f, mid_e):
            i -= 1
        while not _pow10_ge(i, mid_f, mid_e):
            i += 1
        self.read_inf_exp10 = i
        z = math.floor((min_e - 1) * math.log10(2.0))
        while not _le_pow10(z, min_e - 1):
            z -= 1
        while _le_pow10(z + 1, min_e - 1):
            z += 1
        self.read_zero_exp10 = z

    def _build_grisu_powers(self) -> Tuple[int, List[Tuple[int, int, int]]]:
        """``(cf, ce, mk)`` for every normalized binary exponent.

        A value ``f * 2**e`` normalizes to ``wf * 2**we`` with
        ``we = e + bitlen(f) - 64``, so ``we`` spans
        ``[min_e + 1 - 64, max_e + precision - 64]``.
        """
        fmt = self.fmt
        lo = fmt.min_e + 1 - 64
        hi = fmt.max_e + fmt.precision - 64
        table: List[Tuple[int, int, int]] = []
        for e in range(lo, hi + 1):
            power, mk, _exact = cached_power_for_binary_exponent(e)
            table.append((power.f, power.e, mk))
        return lo, table

    def grisu_state(self) -> Tuple[int, List[Tuple[int, int, int]]]:
        """The expensive-to-build portion of the tables, as plain data.

        Everything else in a :class:`FormatTables` rebuilds in
        microseconds (a few hundred big-integer multiplies and a handful
        of exact power comparisons); the Grisu power list is one
        :func:`cached_power_for_binary_exponent` search per normalized
        binary exponent (~2100 for binary64) and dominates cold start.
        The returned pair is what :meth:`from_grisu_state` accepts.
        """
        return self.grisu_e_min, [tuple(t) for t in self.grisu_powers]

    @classmethod
    def from_grisu_state(cls, fmt: FloatFormat, base: int, e_min: int,
                         powers: List[Tuple[int, int, int]]
                         ) -> "FormatTables":
        """Rebuild tables from :meth:`grisu_state` output, skipping the
        per-exponent power search.

        Raises :class:`RangeError` if the state does not cover exactly
        this format's normalized exponent span (a snapshot from another
        format or a stale build) — callers translate that into their
        own staleness error.
        """
        lo = fmt.min_e + 1 - 64
        hi = fmt.max_e + fmt.precision - 64
        if e_min != lo or len(powers) != hi - lo + 1:
            raise RangeError(
                f"grisu state covers [{e_min}, {e_min + len(powers) - 1}]"
                f" but {fmt.name} needs [{lo}, {hi}]")
        state = []
        for entry in powers:
            f, e, mk = entry
            if not (1 << 63) <= f < (1 << 64):
                raise RangeError("grisu power significand not normalized")
            state.append((int(f), int(e), int(mk)))
        return cls(fmt, base, _grisu_state=(e_min, state))

    def power(self, k: int) -> int:
        """``base**k`` — table lookup for every in-range ``k``."""
        if 0 <= k <= self.power_limit:
            return self.powers[k]
        return self.base**k

    def expansion_dominates(self, j: int, e: int) -> bool:
        """``base**j / 2 >= 2**(e-1)`` — exactly (radix-2 formats).

        The fixed-format fast-tier precondition: when the requested
        precision margin ``B**j / 2`` is at least the half-gap above a
        value with exponent ``e``, Section 4's conditionally expanded
        rounding range is governed by the request on *both* sides
        (``m_minus <= m_plus`` always), so the paper's algorithm reduces
        to correct rounding of the exact value at position ``j`` with no
        ``#`` marks — which is what the counted tier certifies.  Exact
        integer comparison via the precomputed power table.
        """
        if j >= 0:
            return e <= 0 or self.power(j) >= (1 << e)
        return e < 0 and (1 << -e) >= self.power(-j)

    # ------------------------------------------------------------------
    # Table-backed scaling (Figure 3 with precomputed constants).
    # ------------------------------------------------------------------

    def scale(self, sv: ScaledValue, base: int, v: Flonum):
        """Scaler-compatible entry: estimator + fixup over the tables.

        Mirrors :func:`repro.core.scaling.scale_estimate` /
        :func:`apply_estimate` exactly (same contract, same fixup), minus
        the per-call ``log_ratio`` lookup, the dict-backed ``power`` and
        the global STATS bookkeeping.
        """
        powers = self.powers
        est = math.ceil((v.e + _digit_length(v.f, self.radix) - 1)
                        * self.ratio - FIXUP_EPSILON)
        r, s, m_plus, m_minus = sv.r, sv.s, sv.m_plus, sv.m_minus
        if est >= 0:
            s = s * powers[est]
        else:
            scale = powers[-est]
            r *= scale
            m_plus *= scale
            m_minus *= scale
        while _too_high(r, s, m_plus, base, sv.high_ok):
            r *= base
            m_plus *= base
            m_minus *= base
            est -= 1
        k = est
        bumps = 0
        while _too_low(r, s * (powers[bumps] if bumps else 1),
                       m_plus, sv.high_ok):
            bumps += 1
        k += bumps
        if bumps == 0:
            return k, r * base, s, m_plus * base, m_minus * base
        if bumps > 1:
            s *= powers[bumps - 1]
        return k, r, s, m_plus, m_minus


def _digit_length(f: int, b: int) -> int:
    if b == 2:
        return f.bit_length()
    n = 0
    while f:
        f //= b
        n += 1
    return n


_TABLE_CACHE: Dict[Tuple[int, int], FormatTables] = {}
_TABLE_LOCK = threading.Lock()


def tables_for(fmt: FloatFormat, base: int) -> FormatTables:
    """The shared, lazily built tables for ``(fmt, base)``."""
    key = (id(fmt), base)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        with _TABLE_LOCK:
            tables = _TABLE_CACHE.get(key)
            if tables is None:
                tables = FormatTables(fmt, base)
                _TABLE_CACHE[key] = tables
    return tables


def install_tables(tables: FormatTables) -> bool:
    """Publish a prebuilt :class:`FormatTables` into the shared cache.

    The warm-start path: a snapshot restore builds tables via
    :meth:`FormatTables.from_grisu_state` and installs them here so the
    first conversion finds them already hot.  A table set already built
    for the pair wins (it is by construction identical); returns whether
    the install took effect.
    """
    key = (id(tables.fmt), tables.base)
    with _TABLE_LOCK:
        if key in _TABLE_CACHE:
            return False
        _TABLE_CACHE[key] = tables
    return True


def clear_tables() -> None:
    """Drop all built tables (tests and memory-pressure ablations)."""
    with _TABLE_LOCK:
        _TABLE_CACHE.clear()
