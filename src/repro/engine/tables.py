"""Per-format precomputed conversion state (the engine's warm data).

``format_shortest`` as shipped by the seed repo re-derives everything per
call: the scaling estimator re-reads ``log_ratio``, ``B**k`` lookups for
wide formats (binary128) miss the paper's 326-entry base-10 table and fall
into a dict memo, and the Grisu fast path re-runs a ``ceil``/adjustment
search for its cached power of ten on every conversion.  A
:class:`FormatTables` instance does all of that work once per
``(FloatFormat, base)`` pair:

* ``powers`` — ``base**k`` for every ``k`` the scaler can request for this
  format, as a flat list (O(1) indexed, no hashing, never evicts);
* ``grisu_powers`` — for radix-2 formats with ``precision <= 62``, the
  correctly rounded 64-bit power of ten for *every normalized binary
  exponent* the format can produce, so Tier 1 is a single list index;
* the estimator constant ``log_ratio(radix, base)`` and the boundary
  constants (``hidden_limit``, ``min_e``, ``max_e``) as plain attributes.

Tables build lazily on first use of a format and are shared process-wide
(guarded by a lock; the tables themselves are immutable once built).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

from repro.bignum.pow_cache import log_ratio
from repro.core.boundaries import ScaledValue
from repro.core.scaling import FIXUP_EPSILON, _too_high, _too_low
from repro.errors import RangeError
from repro.fastpath.diyfp import cached_power_for_binary_exponent
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum

__all__ = ["FormatTables", "tables_for", "clear_tables", "install_tables"]

#: Widest significand the 64-bit Grisu tier can certify (matches
#: :func:`repro.fastpath.grisu.grisu_shortest`).
GRISU_MAX_PRECISION = 62

#: Widest significand the read engine's fast tiers serve.  The interval
#: tier rounds ~128-bit products down to ``precision + 2`` bits, so any
#: precision below the product width works; capped to match the write
#: side's Grisu limit for symmetry (binary128 and x87-80 read exactly).
READ_MAX_PRECISION = GRISU_MAX_PRECISION


def _pow10_ge(a: int, m: int, b: int) -> bool:
    """Exact ``10**a >= m * 2**b`` for positive integer ``m``."""
    lhs, rhs = 1, m
    if a >= 0:
        lhs *= 10**a
    else:
        rhs *= 10**-a
    if b >= 0:
        rhs <<= b
    else:
        lhs <<= -b
    return lhs >= rhs


def _le_pow10(a: int, b: int) -> bool:
    """Exact ``10**a <= 2**b``."""
    if a >= 0:
        return b >= 0 and 10**a <= 1 << b
    if b >= 0:
        return True  # 10**a < 1 <= 2**b
    return (1 << -b) <= 10**-a


def _cmp_pow10(a: int, m: int, b: int) -> int:
    """Exact sign of ``10**a - m * 2**b`` for positive integer ``m``."""
    lhs, rhs = 1, m
    if a >= 0:
        lhs = 10**a
    else:
        rhs = m * 10**-a
    if b >= 0:
        rhs <<= b
    else:
        lhs <<= -b
    return (lhs > rhs) - (lhs < rhs)


def _floor_log10_pow2(m: int, b: int) -> int:
    """Exact ``floor(log10(m * 2**b))`` for integer ``m >= 1``.

    Estimated from the bit length (30103/100000 approximates log10(2)
    to < 3e-7) and corrected with exact power comparisons.
    """
    est = ((m.bit_length() - 1 + b) * 30103) // 100000
    while _cmp_pow10(est, m, b) > 0:
        est -= 1
    while _cmp_pow10(est + 1, m, b) <= 0:
        est += 1
    return est


def _pow10_128(n: int) -> Tuple[int, int, bool]:
    """``(g, a, exact)``: the 128-bit ceiling significand of ``10**n``.

    ``a = floor(log2 10**n)`` and ``g = ceil(10**n * 2**(127 - a))``, so
    ``10**n = (g - d) * 2**(a - 127)`` with ``d in [0, 1)``; ``exact``
    means ``d == 0`` (only possible for ``0 <= n <= 38``, where the
    integer ``10**n`` fits 128 bits unshifted).  This is the shared
    primitive behind both contender tables: the Schubfach writer stores
    ``_pow10_128(-k)`` per binary exponent and the Eisel–Lemire reader
    stores ``_pow10_128(q)`` per decimal exponent.
    """
    if n >= 0:
        m = 10**n
        a = m.bit_length() - 1
        sh = 127 - a
        if sh >= 0:
            return m << sh, a, True
        rem = m & ((1 << -sh) - 1)
        return (m >> -sh) + (1 if rem else 0), a, rem == 0
    m = 10**-n
    # 1/m is never dyadic (m carries the factor 5**-n), so the ceiling
    # is strict and the approximation is never exact.
    return -((-(1 << (127 + m.bit_length()))) // m), -m.bit_length(), False


class FormatTables:
    """Immutable precomputed state for one ``(FloatFormat, base)`` pair."""

    __slots__ = (
        "fmt", "base", "ratio", "hidden_limit", "min_e", "max_e",
        "mantissa_limit", "precision", "radix", "powers", "power_limit",
        "grisu_ok", "grisu_powers", "grisu_e_min",
        "read_fast_ok", "read_host_float", "read_max_pow10", "read_pow5",
        "read_inf_exp10", "read_zero_exp10",
        "schub_ready", "schub_e_min", "schub_powers",
        "lemire_ready", "lemire_q_min", "lemire_powers",
        "lemire_max_digits",
    )

    def __init__(self, fmt: FloatFormat, base: int,
                 _grisu_state: Optional[Tuple[int, List[Tuple[int, int, int]]]]
                 = None):
        if base < 2 or base > 36:
            raise RangeError(f"output base must be in 2..36, got {base}")
        self.fmt = fmt
        self.base = base
        self.radix = fmt.radix
        self.ratio = log_ratio(fmt.radix, base)
        self.hidden_limit = fmt.hidden_limit
        self.mantissa_limit = fmt.mantissa_limit
        self.precision = fmt.precision
        self.min_e = fmt.min_e
        self.max_e = fmt.max_e
        # Largest |k| the estimator can produce for this format: the
        # decimal (base-B) magnitude of the largest/smallest values, plus
        # slack for the fixup and the pre-multiplication.
        span = max(abs(fmt.min_e) + fmt.precision,
                   abs(fmt.max_e) + fmt.precision)
        self.power_limit = int(math.ceil(span * self.ratio)) + 4
        powers: List[int] = []
        acc = 1
        for _ in range(self.power_limit + 1):
            powers.append(acc)
            acc *= base
        self.powers = powers
        # Tier-1 eligibility and its per-binary-exponent power list.
        self.grisu_ok = (base == 10 and fmt.radix == 2
                         and fmt.precision <= GRISU_MAX_PRECISION)
        if self.grisu_ok:
            if _grisu_state is not None:
                self.grisu_e_min, self.grisu_powers = _grisu_state
            else:
                self.grisu_e_min, self.grisu_powers = \
                    self._build_grisu_powers()
        else:
            self.grisu_e_min, self.grisu_powers = 0, []
        # Read-engine eligibility and its per-format exact-power state.
        self.read_fast_ok = (base == 10 and fmt.radix == 2
                             and fmt.precision <= READ_MAX_PRECISION)
        self.read_host_float = False
        self.read_max_pow10 = 0
        self.read_pow5: List[int] = [1]
        self.read_inf_exp10 = 0
        self.read_zero_exp10 = 0
        if self.read_fast_ok:
            self._build_read_tables()
        # Contender-lane tables (Schubfach writer / Eisel–Lemire reader)
        # build lazily on first use of those lanes — the default tier
        # orders never touch them, so cold start stays unchanged.
        self.schub_ready = False
        self.schub_e_min = 0
        self.schub_powers: List[tuple] = []
        self.lemire_ready = False
        self.lemire_q_min = 0
        self.lemire_powers: List[Tuple[int, int, bool]] = []
        self.lemire_max_digits = 0

    def _build_read_tables(self) -> None:
        """Exact-power tables and decimal-magnitude clamps for reading.

        ``read_max_pow10`` is the largest ``k`` with ``5**k`` (hence
        ``10**k = 2**k * 5**k``) exactly representable in ``precision``
        bits — Clinger's exact-power window, generalized per format (22
        for binary64, 10 for binary32, 4 for binary16).  ``read_pow5``
        holds ``5**0 .. 5**read_max_pow10``.

        ``read_inf_exp10`` is the smallest ``I`` such that any value
        ``>= 10**I`` rounds to infinity under round-to-nearest (at or
        above the overflow midpoint ``(2**(p+1) - 1) * 2**(max_e - 1)``);
        ``read_zero_exp10`` the largest ``Z`` such that any value
        ``<= 10**Z`` rounds to zero (at or below half the smallest
        denormal, ``2**(min_e - 1)``).  Both are certified by exact
        integer comparison at build time, so the read engine can settle
        extreme exponents without constructing ``10**|q|``.
        """
        fmt = self.fmt
        self.read_host_float = fmt is BINARY64 or fmt == BINARY64
        pow5, acc = [1], 1
        while acc * 5 < self.mantissa_limit:
            acc *= 5
            pow5.append(acc)
        self.read_max_pow10 = len(pow5) - 1
        self.read_pow5 = pow5
        p, max_e, min_e = fmt.precision, self.max_e, self.min_e
        mid_f, mid_e = (1 << (p + 1)) - 1, max_e - 1
        i = math.ceil(math.log10(mid_f) + mid_e * math.log10(2.0))
        while _pow10_ge(i - 1, mid_f, mid_e):
            i -= 1
        while not _pow10_ge(i, mid_f, mid_e):
            i += 1
        self.read_inf_exp10 = i
        z = math.floor((min_e - 1) * math.log10(2.0))
        while not _le_pow10(z, min_e - 1):
            z -= 1
        while _le_pow10(z + 1, min_e - 1):
            z += 1
        self.read_zero_exp10 = z

    def _build_grisu_powers(self) -> Tuple[int, List[Tuple[int, int, int]]]:
        """``(cf, ce, mk)`` for every normalized binary exponent.

        A value ``f * 2**e`` normalizes to ``wf * 2**we`` with
        ``we = e + bitlen(f) - 64``, so ``we`` spans
        ``[min_e + 1 - 64, max_e + precision - 64]``.
        """
        fmt = self.fmt
        lo = fmt.min_e + 1 - 64
        hi = fmt.max_e + fmt.precision - 64
        table: List[Tuple[int, int, int]] = []
        for e in range(lo, hi + 1):
            power, mk, _exact = cached_power_for_binary_exponent(e)
            table.append((power.f, power.e, mk))
        return lo, table

    def ensure_schub(self) -> None:
        """Build (once) the Schubfach 128-bit power-of-ten table.

        One entry per binary exponent ``e`` in ``[min_e, max_e]``, as a
        flat 8-tuple ``(k, g, sh, exact, k', g', sh', exact')`` — the
        regular-spacing constants followed by the irregular-spacing ones
        (used when ``f == hidden_limit`` and ``e > min_e``, where the
        gap below the value is half the gap above).  ``k`` is
        ``floor(log10 L)`` for the rounding-interval length ``L``
        (``2**e`` regular, ``3 * 2**(e-2)`` irregular), so the interval
        scaled by ``10**-k`` has length in ``[1, 10)``; ``(g, a, exact)
        = _pow10_128(-k)`` and ``sh = 129 - a - e``, making
        ``(c * g) >> sh`` the 128-bit fixed-point image of
        ``c * 2**(e-2) * 10**-k`` that :mod:`repro.engine.schubfach`
        compares candidates against.

        Lazy and lock-guarded: the first conversion routed to the
        Schubfach lane pays the build (a few ms for binary64); engines
        that never select the lane never build it.
        """
        if self.schub_ready:
            return
        if not self.grisu_ok:
            raise RangeError(
                f"schubfach tier serves base-10 radix-2 formats with "
                f"precision <= {GRISU_MAX_PRECISION}, not "
                f"{self.fmt.name} base {self.base}")
        with _TABLE_LOCK:
            if self.schub_ready:
                return
            by_k: Dict[int, Tuple[int, int, bool]] = {}

            def entry(k: int, e: int) -> tuple:
                got = by_k.get(k)
                if got is None:
                    got = by_k[k] = _pow10_128(-k)
                g, a, exact = got
                return (k, g, 129 - a - e, exact)

            table: List[tuple] = []
            for e in range(self.min_e, self.max_e + 1):
                k_reg = _floor_log10_pow2(1, e)
                k_irr = _floor_log10_pow2(3, e - 2)
                table.append(entry(k_reg, e) + entry(k_irr, e))
            self.schub_e_min = self.min_e
            self.schub_powers = table
            self.schub_ready = True

    def ensure_lemire(self) -> None:
        """Build (once) the Eisel–Lemire 128-bit power-of-ten table.

        One ``(g, a, exact) = _pow10_128(q)`` triple per decimal
        exponent ``q`` the lane can meet after truncation and the
        magnitude clamps (``[read_zero_exp10 - 21, read_inf_exp10 + 2]``
        — the clamps bound ``q + digits(d)`` and the lane only serves
        ``d`` of at most 19 digits, so the margin is generous), plus
        ``lemire_max_digits``, the per-format certified digit count
        (17/9/5 for binary64/32/16): inputs within it are proven by
        Mushtak–Lemire never to need the exact-rescue comparison.

        Lazy and lock-guarded, like :meth:`ensure_schub`.
        """
        if self.lemire_ready:
            return
        if not self.read_fast_ok:
            raise RangeError(
                f"lemire tier serves base-10 radix-2 formats with "
                f"precision <= {READ_MAX_PRECISION}, not "
                f"{self.fmt.name} base {self.base}")
        with _TABLE_LOCK:
            if self.lemire_ready:
                return
            q_min = self.read_zero_exp10 - 21
            q_max = self.read_inf_exp10 + 2
            self.lemire_q_min = q_min
            self.lemire_powers = [_pow10_128(q)
                                  for q in range(q_min, q_max + 1)]
            self.lemire_max_digits = self.fmt.decimal_digits_to_distinguish()
            self.lemire_ready = True

    def grisu_state(self) -> Tuple[int, List[Tuple[int, int, int]]]:
        """The expensive-to-build portion of the tables, as plain data.

        Everything else in a :class:`FormatTables` rebuilds in
        microseconds (a few hundred big-integer multiplies and a handful
        of exact power comparisons); the Grisu power list is one
        :func:`cached_power_for_binary_exponent` search per normalized
        binary exponent (~2100 for binary64) and dominates cold start.
        The returned pair is what :meth:`from_grisu_state` accepts.
        """
        return self.grisu_e_min, [tuple(t) for t in self.grisu_powers]

    @classmethod
    def from_grisu_state(cls, fmt: FloatFormat, base: int, e_min: int,
                         powers: List[Tuple[int, int, int]]
                         ) -> "FormatTables":
        """Rebuild tables from :meth:`grisu_state` output, skipping the
        per-exponent power search.

        Raises :class:`RangeError` if the state does not cover exactly
        this format's normalized exponent span (a snapshot from another
        format or a stale build) — callers translate that into their
        own staleness error.
        """
        lo = fmt.min_e + 1 - 64
        hi = fmt.max_e + fmt.precision - 64
        if e_min != lo or len(powers) != hi - lo + 1:
            raise RangeError(
                f"grisu state covers [{e_min}, {e_min + len(powers) - 1}]"
                f" but {fmt.name} needs [{lo}, {hi}]")
        state = []
        for entry in powers:
            f, e, mk = entry
            if not (1 << 63) <= f < (1 << 64):
                raise RangeError("grisu power significand not normalized")
            state.append((int(f), int(e), int(mk)))
        return cls(fmt, base, _grisu_state=(e_min, state))

    def power(self, k: int) -> int:
        """``base**k`` — table lookup for every in-range ``k``."""
        if 0 <= k <= self.power_limit:
            return self.powers[k]
        return self.base**k

    def expansion_dominates(self, j: int, e: int) -> bool:
        """``base**j / 2 >= 2**(e-1)`` — exactly (radix-2 formats).

        The fixed-format fast-tier precondition: when the requested
        precision margin ``B**j / 2`` is at least the half-gap above a
        value with exponent ``e``, Section 4's conditionally expanded
        rounding range is governed by the request on *both* sides
        (``m_minus <= m_plus`` always), so the paper's algorithm reduces
        to correct rounding of the exact value at position ``j`` with no
        ``#`` marks — which is what the counted tier certifies.  Exact
        integer comparison via the precomputed power table.
        """
        if j >= 0:
            return e <= 0 or self.power(j) >= (1 << e)
        return e < 0 and (1 << -e) >= self.power(-j)

    # ------------------------------------------------------------------
    # Table-backed scaling (Figure 3 with precomputed constants).
    # ------------------------------------------------------------------

    def scale(self, sv: ScaledValue, base: int, v: Flonum):
        """Scaler-compatible entry: estimator + fixup over the tables.

        Mirrors :func:`repro.core.scaling.scale_estimate` /
        :func:`apply_estimate` exactly (same contract, same fixup), minus
        the per-call ``log_ratio`` lookup, the dict-backed ``power`` and
        the global STATS bookkeeping.
        """
        powers = self.powers
        est = math.ceil((v.e + _digit_length(v.f, self.radix) - 1)
                        * self.ratio - FIXUP_EPSILON)
        r, s, m_plus, m_minus = sv.r, sv.s, sv.m_plus, sv.m_minus
        if est >= 0:
            s = s * powers[est]
        else:
            scale = powers[-est]
            r *= scale
            m_plus *= scale
            m_minus *= scale
        while _too_high(r, s, m_plus, base, sv.high_ok):
            r *= base
            m_plus *= base
            m_minus *= base
            est -= 1
        k = est
        bumps = 0
        while _too_low(r, s * (powers[bumps] if bumps else 1),
                       m_plus, sv.high_ok):
            bumps += 1
        k += bumps
        if bumps == 0:
            return k, r * base, s, m_plus * base, m_minus * base
        if bumps > 1:
            s *= powers[bumps - 1]
        return k, r, s, m_plus, m_minus


def _digit_length(f: int, b: int) -> int:
    if b == 2:
        return f.bit_length()
    n = 0
    while f:
        f //= b
        n += 1
    return n


_TABLE_CACHE: Dict[Tuple[int, int], FormatTables] = {}
_TABLE_LOCK = threading.Lock()


def tables_for(fmt: FloatFormat, base: int) -> FormatTables:
    """The shared, lazily built tables for ``(fmt, base)``."""
    key = (id(fmt), base)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        with _TABLE_LOCK:
            tables = _TABLE_CACHE.get(key)
            if tables is None:
                tables = FormatTables(fmt, base)
                _TABLE_CACHE[key] = tables
    return tables


def install_tables(tables: FormatTables) -> bool:
    """Publish a prebuilt :class:`FormatTables` into the shared cache.

    The warm-start path: a snapshot restore builds tables via
    :meth:`FormatTables.from_grisu_state` and installs them here so the
    first conversion finds them already hot.  A table set already built
    for the pair wins (it is by construction identical); returns whether
    the install took effect.
    """
    key = (id(tables.fmt), tables.base)
    with _TABLE_LOCK:
        if key in _TABLE_CACHE:
            return False
        _TABLE_CACHE[key] = tables
    return True


def clear_tables() -> None:
    """Drop all built tables (tests and memory-pressure ablations)."""
    with _TABLE_LOCK:
        _TABLE_CACHE.clear()
