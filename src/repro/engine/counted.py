"""Fixed-format tier 1: counted-digit Grisu over raw machine integers.

Semantically identical to :func:`repro.fastpath.counted.counted_fixed`
(same DigitGen / RoundWeedCounted structure, so every acceptance is a
*certified* correctly rounded digit block of the exact value
``f * 2**e``) but engineered like :mod:`repro.engine.tier1`:

* no ``DiyFp`` allocations — the scaled significand and exponent live in
  local integers;
* the cached power of ten comes from the per-format
  :class:`repro.engine.tables.FormatTables` list indexed by the
  normalized binary exponent, replacing the per-call estimate/adjust
  search;
* digits accumulate into one integer (``acc = acc * 10 + d``) so the
  caller renders the block with a single C-speed ``str(acc)``;
* absolute-position requests (``printf %f``) run through the same
  generator: the scaled integral part fixes the first digit's decimal
  position before any digit is emitted, so ``requested = k - j``.

The certification mirrors the self-validating fast-path pattern of
Mushtak & Lemire's parser work, mirrored onto the printing side: the
64-bit arithmetic either *proves* the rounded block correct (the
accumulated error ``unit`` stays provably on one side of the rounding
boundary) or reports failure, and the caller falls back to the exact
big-integer converter.  A useful consequence: an exact decimal tie
always lands precisely on the boundary in the scaled-integer domain —
the total scaling error is strictly below one ``unit`` and both the
remainder and the boundary are integers, so they must coincide — which
means genuine ties always bail.  Every acceptance is therefore valid
for *every* tie-break strategy, and results may be memoized across tie
contexts.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["counted_tier_digits", "MAX_COUNTED_DIGITS"]

#: 64-bit scaled arithmetic can never certify more digits than this
#: (matches :func:`repro.fastpath.counted.counted_fixed`).
MAX_COUNTED_DIGITS = 17

_POW10 = [10**i for i in range(20)]
_HALF64 = 1 << 63


def _weed(acc: int, nd: int, kres: int, rest: int, ten_kappa: int,
          unit: int) -> Optional[Tuple[int, int, int]]:
    """Certify the final rounding, or None when 64 bits cannot prove it.

    ``rest`` is the remainder below the emitted block and ``ten_kappa``
    the weight of its last digit, both in the scale where the
    accumulated error is ``unit``.
    """
    if unit >= ten_kappa:
        return None  # the error swamps the digit position entirely
    if ten_kappa - unit <= unit:
        return None
    # Provably round down (truncate): even the largest possible true
    # remainder stays below the midpoint.
    if ten_kappa - rest > rest and ten_kappa - 2 * rest >= 2 * unit:
        return acc, nd, kres
    # Provably round up: even the smallest possible true remainder is at
    # or above the midpoint (with the strict side covered by ``unit``).
    if rest > unit and ten_kappa - (rest - unit) <= rest - unit:
        acc += 1
        if acc == _POW10[nd]:  # 9…9 carried all the way: 10**nd
            acc //= 10
            kres += 1
        return acc, nd, kres
    return None


def counted_tier_digits(f: int, e: int, grisu_powers, grisu_e_min: int,
                        ndigits: Optional[int] = None,
                        position: Optional[int] = None,
                        ) -> Optional[Tuple[int, int, int]]:
    """Correctly rounded counted digits of ``f * 2**e``, or None.

    Exactly one of ``ndigits`` (significant digits to produce) and
    ``position`` (weight exponent of the last digit) must be given.
    Returns ``(acc, nd, k)``: the digit block is ``str(acc)`` (``nd``
    long, no leading zero), the first digit has weight ``10**(k-1)``.
    In absolute mode a carry past the first digit raises ``k`` by one,
    leaving the last digit at ``position + 1`` — the caller restores the
    requested position by appending a zero (the carried value is exactly
    ``10**(k-1)``, so the extra digit is exact).

    Returns None whenever the rounded block cannot be *proven* correct
    — too many digits for the 64-bit error budget, a (near-)tie at the
    rounding boundary, or a request below the first digit's position.
    """
    shift = 64 - f.bit_length()
    wf = f << shift
    we = e - shift
    cf, ce, mk = grisu_powers[we - grisu_e_min]
    w = (wf * cf + _HALF64) >> 64
    one_e = -(we + ce + 64)
    one_f = 1 << one_e
    frac_mask = one_f - 1
    integrals = w >> one_e
    fractionals = w & frac_mask

    # floor(log10(integrals)) via bit length (1233/4096 ~ log10(2)).
    exponent = (integrals.bit_length() * 1233) >> 12
    if integrals < _POW10[exponent]:
        exponent -= 1
    divisor = _POW10[exponent]
    kappa = exponent + 1
    # Every digit moves one unit from kappa to nd, so the radix point
    # k = mk + kappa + nd is fixed at entry (carry adjusts it by one).
    kres = mk + kappa

    requested = ndigits if ndigits is not None else kres - position
    if requested < 1 or requested > MAX_COUNTED_DIGITS:
        return None

    acc = 0
    nd = 0
    unit = 1
    while kappa > 0:
        digit, integrals = divmod(integrals, divisor)
        acc = acc * 10 + digit
        nd += 1
        requested -= 1
        kappa -= 1
        if requested == 0:
            rest = (integrals << one_e) + fractionals
            return _weed(acc, nd, kres, rest, divisor << one_e, unit)
        divisor //= 10

    while True:
        fractionals *= 10
        unit *= 10
        digit = fractionals >> one_e
        acc = acc * 10 + digit
        nd += 1
        fractionals &= frac_mask
        requested -= 1
        if requested == 0:
            return _weed(acc, nd, kres, fractionals, one_f, unit)
