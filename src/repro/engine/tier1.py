"""Tier 1: Grisu3 over raw machine integers and precomputed powers.

Semantically identical to :func:`repro.fastpath.grisu.grisu_shortest`
(same DigitGen/RoundWeed structure, same certification, so every success
is byte-equal to the exact algorithm under both nearest-reader
assumptions) but engineered for throughput:

* no ``DiyFp`` dataclass allocations — significands and exponents live in
  local integers;
* the cached power of ten comes from a per-format list indexed by the
  normalized binary exponent (:class:`repro.engine.tables.FormatTables`),
  replacing the per-call estimate/adjust search;
* digits accumulate into one integer (``acc = acc * 10 + d``) so the
  caller gets the final digit string from a single C-speed ``str(acc)``
  instead of a per-digit join, and RoundWeed's decrement is ``acc -= 1``;
* ``floor(log10)`` of the integral part uses the bit-length multiply
  trick instead of ``len(str(...))``.

The seed's ``fastpath.grisu`` stays as the readable reference; the test
suite pins this implementation to it value-for-value.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["tier1_digits"]

_POW10 = [10**i for i in range(20)]


def tier1_digits(f: int, e: int, hidden_limit: int, min_e: int,
                 grisu_powers: List[Tuple[int, int, int]], grisu_e_min: int,
                 ) -> Optional[Tuple[int, int, int]]:
    """Shortest digits of ``f * 2**e`` via 64-bit arithmetic.

    Returns ``(acc, ndigits, k)`` with the digit string ``str(acc)``
    (no leading zero, ``ndigits`` long) and radix point ``k``, or None
    when 64 bits cannot certify the result.
    """
    # Normalize w and the boundary midpoints m-/m+ to 64-bit significands.
    # normalize(2f+1, e-1) always lands on the same exponent as
    # normalize(f, e) because bitlen(2f+1) == bitlen(f) + 1, so all three
    # significands share one exponent and one cached power.
    shift = 64 - f.bit_length()
    wf = f << shift
    we = e - shift
    pf = ((f << 1) + 1) << (shift - 1)
    if f == hidden_limit and e > min_e:
        mf = ((f << 2) - 1) << (shift - 2)
    else:
        mf = ((f << 1) - 1) << (shift - 1)
    cf, ce, mk = grisu_powers[we - grisu_e_min]

    half = 1 << 63
    w = (wf * cf + half) >> 64
    too_low = ((mf * cf + half) >> 64) - 1
    too_high = ((pf * cf + half) >> 64) + 1
    unsafe = too_high - too_low
    one_e = -(we + ce + 64)
    one_f = 1 << one_e
    frac_mask = one_f - 1
    integrals = too_high >> one_e
    fractionals = too_high & frac_mask
    dist = too_high - w

    # floor(log10(integrals)) via bit length (1233/4096 ~ log10(2)).
    exponent = (integrals.bit_length() * 1233) >> 12
    if integrals < _POW10[exponent]:
        exponent -= 1
    divisor = _POW10[exponent]
    kappa = exponent + 1
    # Every exit returns k = mk + kappa_now + nd_now, and each emitted
    # digit moves one unit from kappa to nd — so k is a loop invariant,
    # fixed at entry.
    kres = mk + kappa

    acc = 0
    nd = 0
    unit = 1
    while kappa > 0:
        digit, integrals = divmod(integrals, divisor)
        acc = acc * 10 + digit
        nd += 1
        kappa -= 1
        rest = (integrals << one_e) + fractionals
        if rest < unsafe:
            ten_kappa = divisor << one_e
            small = dist - unit
            while (rest < small
                   and unsafe - rest >= ten_kappa
                   and (rest + ten_kappa < small
                        or small - rest >= rest + ten_kappa - small)):
                acc -= 1
                rest += ten_kappa
            big = dist + unit
            if (rest < big
                    and unsafe - rest >= ten_kappa
                    and (rest + ten_kappa < big
                         or big - rest > rest + ten_kappa - big)):
                return None
            if not (2 * unit <= rest <= unsafe - 4 * unit):
                return None
            return acc, nd, kres

        divisor //= 10

    while True:
        fractionals *= 10
        unit *= 10
        unsafe *= 10
        digit = fractionals >> one_e
        acc = acc * 10 + digit
        nd += 1
        fractionals &= frac_mask
        if fractionals < unsafe:
            scaled_dist = dist * unit
            small = scaled_dist - unit
            rest = fractionals
            while (rest < small
                   and unsafe - rest >= one_f
                   and (rest + one_f < small
                        or small - rest >= rest + one_f - small)):
                acc -= 1
                rest += one_f
            big = scaled_dist + unit
            if (rest < big
                    and unsafe - rest >= one_f
                    and (rest + one_f < big
                         or big - rest > rest + one_f - big)):
                return None
            if not (2 * unit <= rest <= unsafe - 4 * unit):
                return None
            return acc, nd, kres
