"""Schubfach-style shortest-form writer: certified digits, no bail path.

The Grisu3 tier (:mod:`repro.engine.tier1`) certifies its output with a
64-bit error band and *bails* on the ~0.5–1% of values where the band
straddles a decision boundary.  Adams' Ryū and Giulietti's Schubfach
showed the bail path is unnecessary: with a wide enough fixed-point
image of the scaled rounding interval, every finite value can be decided
outright.  This module reproduces the Schubfach decision structure over
Python integers with the 128-bit per-format power table built by
:meth:`repro.engine.tables.FormatTables.ensure_schub`.

The shape of the computation, for ``v = f * 2**e`` positive finite:

* Work at quadruple scale: ``cb = 4f`` with interval endpoints
  ``cbl = 4f - 2`` and ``cbr = 4f + 2`` (or ``cbl = 4f - 1`` when the
  gap below is half-width: ``f == hidden_limit`` and ``e > min_e``), so
  the rounding interval is ``(cbl, cbr) * 2**(e-2)`` — open or closed
  per the reader-mode ``low_ok``/``high_ok`` flags, which for the two
  nearest modes collapse to a single ``even`` bit exactly as in
  :func:`repro.core.boundaries.adjust_for_mode`.
* Scale by ``10**-k`` with ``k = floor(log10 L)`` for the interval
  length ``L``, so the scaled interval has length in ``[1, 10)``: it
  always contains an integer and at most one multiple of ten.
* Every comparison of a candidate integer ``n`` against a scaled
  quantity ``c * 2**(e-2) * 10**-k`` goes through the table's ceiling
  significand ``g`` (``10**-k = (g - d) * 2**(a-127)``, ``d in [0,1)``):
  ``n << sh`` versus ``c * g`` decides all but a width-``c`` ambiguity
  band, and anything landing in the band — which Schubfach's paper
  proves empty for these formats, a proof this module does not lean on
  — is settled by one exact big-integer comparison.  No path bails.
* Prefer the (at most one) multiple of ten inside the interval —
  stripping its trailing zeros gives the shorter form — else pick
  between ``s = floor(v * 10**-k)`` and ``s + 1`` by membership,
  proximity, and the tie strategy, mirroring the exact algorithm's
  final-digit rule.

Output is the engine currency ``(k, body)`` — byte-identical to the
exact Burger–Dybvig tier for every finite input, enforced by the
``repro.verify --contenders`` battery and the hypothesis round-trip
suite (see docs/contenders.md).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.rounding import TieBreak

from repro.engine.tables import FormatTables

__all__ = ["schubfach_digits"]


def _cmp_exact(n: int, c: int, e: int, k: int) -> int:
    """Exact sign of ``n - c * 2**(e-2) * 10**-k`` (the rescue path).

    Reached only when the 128-bit comparison is inconclusive — the
    candidate lies within ``c`` ulps of the scaled boundary — which the
    Schubfach paper shows cannot happen for binary16/32/64.  Keeping the
    rescue makes the lane unconditionally correct without reproducing
    that proof: still no bail path, just one big-integer comparison.
    """
    lhs, rhs = n, c
    if e >= 2:
        rhs <<= e - 2
    else:
        lhs <<= 2 - e
    if k >= 0:
        lhs *= 10**k
    else:
        rhs *= 10**-k
    return (lhs > rhs) - (lhs < rhs)


def schubfach_digits(f: int, e: int, tables: FormatTables, even: bool,
                     tie: TieBreak) -> Tuple[int, str]:
    """Certified shortest digits of ``f * 2**e``: ``(k, body)``.

    ``even`` is the collapsed ``low_ok``/``high_ok`` flag for the two
    nearest reader modes (``NEAREST_EVEN`` with an even significand —
    boundaries included; otherwise excluded).  ``tie`` breaks the one
    remaining exact tie, exactly like the final-digit rule of
    :func:`repro.core.dragon.generate_digits`.  Never bails: every
    finite positive input resolves here.

    The caller is responsible for :meth:`FormatTables.ensure_schub` and
    the mode gate (nearest modes only, like the Grisu tier).
    """
    entry = tables.schub_powers[e - tables.schub_e_min]
    cb = f << 2
    if f == tables.hidden_limit and e > tables.min_e:
        k, g, sh, exact = entry[4], entry[5], entry[6], entry[7]
        cbl = cb - 1
    else:
        k, g, sh, exact = entry[0], entry[1], entry[2], entry[3]
        cbl = cb - 2
    cbr = cb + 2

    def cmp(n: int, c: int) -> int:
        # sign(n - c * 2**(e-2) * 10**-k): the ceiling table gives
        # c*g = (scaled c + c*d) << sh with d in [0, 1), so n<<sh above
        # c*g is surely above, at most c below it is surely below, and
        # the band between goes to the exact rescue.
        scaled_n = n << sh
        p = c * g
        if scaled_n > p:
            return 1
        if scaled_n == p:
            return 0 if exact else 1
        if scaled_n <= p - c:
            return -1
        return _cmp_exact(n, c, e, k)

    def in_interval(n: int) -> bool:
        lo = cmp(n, cbl)
        if not (lo >= 0 if even else lo > 0):
            return False
        hi = cmp(n, cbr)
        return hi <= 0 if even else hi < 0

    # s = floor(v * 10**-k); the shifted ceiling product overshoots by
    # at most one, corrected with a single comparison.
    s = (cb * g) >> sh
    if cmp(s, cb) > 0:
        s -= 1
    # First try the coarser grid: at most one multiple of ten fits in
    # the interval (length < 10), and it must be adjacent to s.  This
    # check always runs — proximity alone would pick the wrong digits
    # for tiny denormals (e.g. binary64 f=10, e=-1074: the interval
    # contains 50 but 49 is nearer), so there is no `s >= 100` shortcut.
    s10 = s - s % 10
    if in_interval(s10):
        text = str(s10)
        return k + len(text), text.rstrip("0")
    t10 = s10 + 10
    if in_interval(t10):
        text = str(t10)
        return k + len(text), text.rstrip("0")
    # Unit grid: choose between s and s+1 by membership, then proximity
    # (cmp of s + t against 2*cb is the midpoint test), then the tie
    # strategy.  Neither being a multiple of ten here (they would have
    # been caught above), the tie cannot carry past digit nine.
    t = s + 1
    if in_interval(s):
        if in_interval(t):
            rnd = cmp(s + t, cb << 1)
            if rnd > 0:
                c = s
            elif rnd < 0:
                c = t
            else:
                d = s % 10
                c = s if tie.choose(d) == d else t
        else:
            c = s
    elif in_interval(t):
        c = t
    else:  # pragma: no cover - interval length >= 1 contains an integer
        raise AssertionError("schubfach: no candidate in rounding interval")
    text = str(c)
    return k + len(text), text
