"""Vectorized byte-plane pipeline: whole-buffer parsing and formatting.

The bulk layer (:mod:`repro.engine.bulk`) dedups values but still moves
one Python ``str`` per row — splitting a payload materializes a string
per literal, and re-reading packs a :class:`~repro.floats.model.Flonum`
per row just to call ``to_bits`` on it.  At serving scale that churn,
not conversion, is the bottleneck.  This module operates on whole
delimited byte *planes* instead, in the style of Lemire's
"Number Parsing at a Gigabyte per Second":

* :func:`split_plane` — a delimited splitter that reports token
  *offsets and lengths* (``array`` / numpy-through-buffer-protocol when
  available) so shard boundaries and classification never materialize
  per-row strings;
* :func:`classify_tokens` — a vectorized classify sweep (sign, digit
  purity, digit count, exact-power window) that partitions a column of
  byte tokens into per-tier sub-batches in one pass, with a
  pure-python fallback when numpy is absent;
* :func:`parse_buffer` — tokenize, dedup on *bytes* tokens, scan each
  distinct token with a bytes-level :func:`_scan_decimal` equivalent,
  convert the host-window sub-batch with one ``array('d')`` pass and
  everything else through :meth:`ReadEngine._convert` directly —
  pow-table lookups and the stats-lock acquisition hoisted out of the
  per-value loop, and never a per-row ``str`` or ``Flonum``;
* :func:`format_buffer` — the mirror image: dedup bit patterns, format
  each distinct value once, and emit pre-terminated byte rows straight
  into one payload (optionally a :class:`~repro.serve.DelimitedWriter`
  buffer) instead of building a list of strings.

Everything is byte/bit-identical to the scalar engines — enforced by
``python -m repro.verify --buffer`` — the pipeline only changes *how*
the same results are produced.  numpy is optional and reached purely
through the buffer protocol; every path has a stdlib fallback.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple, Union

from repro import faults as _faults
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine.bulk import (
    _format_bits,
    _itemsize,
    ingest_bits,
)
from repro.engine.reader import (
    _HOST_POW10_MAX,
    _HOST_POW10_MIN,
    _NEAREST,
    ReadEngine,
)
from repro.engine.tables import tables_for
from repro.errors import DecodeError, ParseError, RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.format.notation import NotationOptions
from repro.reader.bellerophon import _try_fast
from repro.reader.parse import parse_decimal

try:  # optional: reached through the buffer protocol only
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = ["split_plane", "split_rows", "classify_tokens",
           "parse_buffer", "format_buffer"]

#: numpy dtype name per unsigned itemsize (the vectorized dedup leg).
_NP_UINT_BY_SIZE = {2: "uint16", 4: "uint32", 8: "uint64"}

#: Tier codes :func:`classify_tokens` assigns.
TIER_FAST = 0    #: host/exact-power window candidate (sub-batchable)
TIER_CONVERT = 1  #: finite literal for the interval/exact tiers
TIER_SLOW = 2    #: specials, malformed, oversized — full parser

#: ASCII digit byte lookup (the classify sweep's purity test).
_DIGITS = frozenset(b"0123456789")


def _plane_bytes(data) -> bytes:
    """Normalize a payload to ``bytes``; :class:`DecodeError` otherwise.

    ``str`` is accepted for parity with the legacy row APIs (encoded as
    ASCII); anything without the buffer protocol is a decode error, not
    a ``TypeError`` — malformed payloads are data errors.
    """
    if isinstance(data, bytes):
        return data
    if isinstance(data, (bytearray, memoryview)):
        return bytes(data)
    if isinstance(data, str):
        try:
            return data.encode("ascii")
        except UnicodeEncodeError as exc:
            raise DecodeError(f"non-ASCII payload: {exc}") from None
    try:
        return bytes(memoryview(data))
    except TypeError:
        raise DecodeError(
            f"expected a delimited byte payload, got "
            f"{type(data).__name__!r}") from None


def _delim_bytes(delimiter: Union[bytes, str]) -> bytes:
    if isinstance(delimiter, str):
        delim = delimiter.encode("ascii")
    elif isinstance(delimiter, (bytes, bytearray, memoryview)):
        delim = bytes(delimiter)
    else:
        raise DecodeError(f"delimiter must be bytes or str, got "
                          f"{type(delimiter).__name__!r}")
    if not delim:
        raise RangeError("delimiter must be non-empty")
    return delim


def split_plane(data, delimiter: Union[bytes, str] = b"\n"
                ) -> Tuple[bytes, array, array]:
    """Token offsets/lengths of a delimited plane: ``(plane, starts,
    lengths)``.

    No per-row object is materialized — the result is the normalized
    plane plus two index arrays (``array('q')``), which is what shard
    splitting and classification consume.  One trailing terminator is
    allowed (no phantom empty row); a trailing *unterminated* token is
    still a token.  CRLF and other multi-byte delimiters are handled;
    non-bytes input raises :class:`DecodeError`.

    With numpy present and a single-byte delimiter, the delimiter scan
    is one vectorized compare over a zero-copy view of the plane;
    otherwise a C-level ``find`` walk computes the same arrays.
    """
    plane = _plane_bytes(data)
    delim = _delim_bytes(delimiter)
    starts = array("q")
    lengths = array("q")
    n = len(plane)
    if not n:
        return plane, starts, lengths
    dlen = len(delim)
    if _np is not None and dlen == 1 and n >= 64:
        arr = _np.frombuffer(plane, dtype=_np.uint8)
        hits = _np.flatnonzero(arr == delim[0])
        starts.frombytes(memoryview(
            _np.concatenate(([0], hits[:-1] + 1, hits[-1:] + 1))
            .astype(_np.int64).tobytes()) if hits.size
            else array("q", [0]).tobytes())
        if starts[-1] >= n:  # trailing terminator: no phantom row
            starts.pop()
        ends = hits.tolist()
        for i, a in enumerate(starts):
            lengths.append((ends[i] if i < len(ends) else n) - a)
        return plane, starts, lengths
    find = plane.find
    pos = 0
    while pos < n:
        hit = find(delim, pos)
        if hit < 0:
            starts.append(pos)
            lengths.append(n - pos)
            break
        starts.append(pos)
        lengths.append(hit - pos)
        pos = hit + dlen
    return plane, starts, lengths


def _tokens(data, delimiter: Union[bytes, str]) -> List[bytes]:
    """The plane's rows as *bytes* tokens (one C split, never str)."""
    plane = _plane_bytes(data)
    delim = _delim_bytes(delimiter)
    if not plane:
        return []
    tokens = plane.split(delim)
    if tokens and not tokens[-1]:
        tokens.pop()
    return tokens


def split_rows(data, delimiter: Union[bytes, str] = b"\n") -> List[str]:
    """Rows of a delimited payload as strings — the compatibility
    surface the row-at-a-time APIs keep using.

    Fixes the historical ``_split_rows`` edge cases: one trailing
    terminator never yields a phantom empty row, CRLF and other
    multi-byte delimiters split correctly, and non-bytes/non-str input
    raises :class:`DecodeError` instead of ``TypeError``.
    """
    tokens = _tokens(data, delimiter)
    try:
        return [t.decode("ascii") for t in tokens]
    except UnicodeDecodeError as exc:
        raise DecodeError(f"non-ASCII payload: {exc}") from None


def _scan_token(tok: bytes):
    """Bytes-level :func:`repro.reader.parse._scan_decimal` equivalent.

    Same acceptance and the same normalized ``(sign, digits, exponent)``
    fields, over a bytes token — ``bytes.isdigit`` is ASCII-only, so no
    ``isascii`` gate is needed.  Returns None for anything the full
    parser must see (specials, ``#`` marks, malformed, oversized).
    """
    body = tok
    c = tok[:1]
    if c == b"-":
        sign = 1
        body = tok[1:]
    else:
        sign = 0
        if c == b"+":
            body = tok[1:]
    mant, sep, exp_part = body.partition(b"e")
    if not sep:
        mant, sep, exp_part = body.partition(b"E")
    if sep:
        ec = exp_part[:1]
        if ec == b"-":
            exp_part = exp_part[1:]
            if not exp_part.isdigit():
                return None
            exponent = -int(exp_part)
        else:
            if ec == b"+":
                exp_part = exp_part[1:]
            if not exp_part.isdigit():
                return None
            exponent = int(exp_part)
    else:
        exponent = 0
    int_part, _, frac_part = mant.partition(b".")
    if int_part and not int_part.isdigit():
        return None
    if frac_part:
        if not frac_part.isdigit():
            return None
        exponent -= len(frac_part)
        digits_str = int_part + frac_part
    else:
        digits_str = int_part
    if not digits_str or len(digits_str) > 4000:
        return None
    digits = int(digits_str)
    if digits:
        while digits % 10 == 0:
            digits //= 10
            exponent += 1
    else:
        exponent = 0
    return sign, digits, exponent


def _plain_digit_mask(tokens: List[bytes]) -> Optional[list]:
    """Vectorized purity test: which tokens are bare ASCII digit runs.

    Builds one terminated plane from the tokens and runs a 256-entry
    lookup table plus a segmented reduction over a zero-copy view —
    the numpy-through-buffer-protocol leg of the classify pass.  The
    mask only *routes* tokens to the cheap ``int()`` scan; a token it
    marks scans identically through :func:`_scan_token`, so the result
    cannot depend on this pass.  None when numpy is absent or the
    batch is too small to matter.
    """
    if _np is None or len(tokens) < 512:
        return None
    plane = b"\n".join(tokens) + b"\n"
    arr = _np.frombuffer(plane, dtype=_np.uint8)
    lut = _np.ones(256, dtype=bool)
    lut[ord("0"):ord("9") + 1] = False  # True marks a non-digit byte
    starts = _np.empty(len(tokens), dtype=_np.int64)
    starts[0] = 0
    lens = _np.fromiter(map(len, tokens), dtype=_np.int64,
                        count=len(tokens))
    _np.cumsum(lens[:-1] + 1, out=starts[1:])
    # Each segment spans the token plus its terminator, so a pure digit
    # run counts exactly one non-digit byte (the terminator itself).
    bad = _np.add.reduceat(lut[arr], starts)
    return ((bad == 1) & (lens >= 1) & (lens <= 19)).tolist()


def classify_tokens(tokens: List[bytes], fmt: FloatFormat = BINARY64,
                    tables=None) -> Tuple[list, array]:
    """One sweep over a token column: ``(scans, tiers)``.

    ``scans[i]`` is the normalized ``(sign, digits, exponent)`` triple
    (or None for tokens only the full parser can judge) and
    ``tiers[i]`` the sub-batch the token belongs to: :data:`TIER_FAST`
    for significands that fit the format inside its exact-power window
    (digit count and window test against
    :class:`~repro.engine.tables.FormatTables`), :data:`TIER_CONVERT`
    for other finite literals, :data:`TIER_SLOW` for specials and
    malformed input.  The digit-purity/sign pre-pass is vectorized
    through the buffer protocol when numpy is available
    (:func:`_plain_digit_mask`); the fallback runs the same sweep in
    pure python with identical results.
    """
    if tables is None:
        tables = tables_for(fmt, 10)
    if tables.read_host_float:
        win_lo, win_hi = _HOST_POW10_MIN, _HOST_POW10_MAX
    else:
        win_lo, win_hi = -tables.read_max_pow10, tables.read_max_pow10
    mantissa_limit = tables.mantissa_limit
    scans: list = []
    append = scans.append
    tiers = array("b", bytes(len(tokens)))
    plain = _plain_digit_mask(tokens)
    scan = _scan_token
    for i, tok in enumerate(tokens):
        if plain is not None and plain[i]:
            # Vector-classified digit run: sign 0, exponent 0, with the
            # scanner's trailing-zero normalization replicated.
            d = int(tok)
            q = 0
            if d:
                while d % 10 == 0:
                    d //= 10
                    q += 1
            sc = (0, d, q)
        else:
            sc = scan(tok)
        append(sc)
        if sc is None:
            tiers[i] = TIER_SLOW
        elif sc[1] < mantissa_limit and win_lo <= sc[2] <= win_hi:
            tiers[i] = TIER_FAST
        else:
            tiers[i] = TIER_CONVERT
    return scans, tiers


def _reader_of(engine) -> ReadEngine:
    if engine is None:
        from repro.engine.reader import default_read_engine

        return default_read_engine()
    if isinstance(engine, ReadEngine):
        return engine
    return engine.reader  # an Engine: its attached read engine


def _parse_tokens(uniques: List[bytes], fmt: FloatFormat,
                  mode: ReaderMode, reader: ReadEngine) -> List[int]:
    """Bit patterns of distinct byte tokens, per-tier sub-batched.

    The hot core of :func:`parse_buffer`.  Tables, the window test and
    the conversion entry point are hoisted out of the loop; the memo is
    deliberately skipped (the caller's dedup already collapses the
    batch, and memo traffic per token is exactly the churn this path
    removes); stats are tallied locally and flushed under one lock.

    The :data:`TIER_FAST` sub-batch for host-float formats (binary64)
    runs Clinger's exact-power multiply per token but converts the
    accumulated results to bit patterns with *one* ``array('d')``
    buffer cast for the whole sub-batch — no per-value Flonum, no
    per-value ``to_bits``.  Everything else funnels through
    :meth:`ReadEngine._convert`, the same counter-free core the scalar
    reader uses, so results are bit-identical by construction.
    """
    tables = reader._context(fmt, mode)[1]
    scans, tiers = classify_tokens(uniques, fmt, tables)
    out = [0] * len(uniques)
    sign_shift = fmt.total_bits - 1
    # The inline host sub-batch replicates _convert's tier-0 outcome
    # exactly; it must stand aside whenever _convert would behave
    # differently: tier0 disabled or not the leading lane (another lane
    # would claim the attribution first), non-nearest mode, no
    # host-float tables, or an armed fault plan (whose tier sites fire
    # inside _convert).
    host_batch = (tables.read_host_float and tables.read_fast_ok
                  and reader.tier_order[:1] == ("tier0",)
                  and mode in _NEAREST
                  and _faults._PLAN is None)
    convert = reader._convert
    to_parsed = reader._convert_parsed
    host_f: List[float] = []
    host_sign: List[int] = []
    host_idx: List[int] = []
    t0 = t1 = t1b = t2 = sp = lm = tf = 0
    for i, sc in enumerate(scans):
        if sc is None:
            tok = uniques[i]
            try:
                text = tok.decode("ascii")
            except UnicodeDecodeError:
                raise ParseError(
                    f"non-ASCII literal: {tok[:32]!r}") from None
            value, tier, bailed, faulted = to_parsed(
                parse_decimal(text), fmt, mode, tables)
        else:
            sign, d, q = sc
            if d == 0:
                out[i] = sign << sign_shift
                sp += 1
                continue
            if host_batch and tiers[i] == TIER_FAST:
                fast = _try_fast(d, q)
                if fast is not None:
                    host_idx.append(i)
                    host_sign.append(sign)
                    host_f.append(fast)
                    t0 += 1
                    continue
            value, tier, bailed, faulted = convert(sign, d, q, fmt,
                                                   mode, tables)
        if bailed:
            t1b += 1
        if faulted:
            tf += 1
        if tier == "tier0":
            t0 += 1
        elif tier == "tier1":
            t1 += 1
        elif tier == "lemire":
            lm += 1
        elif tier == "tier2":
            t2 += 1
        else:
            sp += 1
        out[i] = value.to_bits()
    if host_f:
        # One buffer cast converts the whole sub-batch of host-float
        # results to bit patterns; the sign is OR-ed in afterwards
        # (_try_fast works on magnitudes, exactly like _convert).
        host_bits = array("Q")
        host_bits.frombytes(array("d", host_f).tobytes())
        for i, s, b in zip(host_idx, host_sign, host_bits):
            out[i] = b | (s << 63)
    with reader._lock:
        reader._tier0_hits += t0
        reader._tier1_hits += t1
        reader._tier1_bailouts += t1b
        reader._tier2_calls += t2
        reader._lemire_hits += lm
        reader._specials += sp
        reader._tier_faults += tf
    return out


def parse_buffer(data, fmt: FloatFormat = BINARY64, *,
                 delimiter: Union[bytes, str] = b"\n",
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                 out: str = "bits", engine=None, dedup: bool = True):
    """Parse a whole delimited byte plane without per-row strings.

    The read mirror of :func:`format_buffer`: tokenize with one C-level
    split (tokens stay ``bytes``), dedup on the byte tokens, classify
    and convert only the distinct ones (:func:`_parse_tokens`), and fan
    the bit patterns back out in row order.  ``out="bits"`` (default)
    returns bit-pattern ints — the columnar form — ``out="flonums"``
    the :class:`Flonum` values.

    Results are bit-identical to the scalar
    :meth:`~repro.engine.reader.ReadEngine.read_many` on the same rows
    (the ``--buffer`` verify battery enforces it); malformed rows raise
    the same :class:`ParseError`.  The engine memo is not consulted:
    within a plane the dedup pass replaces it, and skipping the probe
    per row is a large part of the speedup.
    """
    if out not in ("bits", "flonums"):
        raise RangeError(f"out must be 'bits' or 'flonums', got {out!r}")
    reader = _reader_of(engine)
    tokens = _tokens(data, delimiter)
    if not tokens:
        return []
    stripped = [t.strip() for t in tokens]
    if dedup:
        interned = dict.fromkeys(stripped)
        uniques = list(interned)
        for t, b in zip(uniques,
                        _parse_tokens(uniques, fmt, mode, reader)):
            interned[t] = b
        bits = list(map(interned.__getitem__, stripped))
    else:
        bits = _parse_tokens(stripped, fmt, mode, reader)
    if out == "bits":
        return bits
    from_bits = Flonum.from_bits
    return [from_bits(b, fmt) for b in bits]


def format_buffer(data, fmt: FloatFormat = BINARY64, *,
                  delimiter: Union[bytes, str] = b"\n",
                  mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                  tie: TieBreak = TieBreak.UP,
                  options: Optional[NotationOptions] = None,
                  engine=None, dedup: bool = True, writer=None) -> bytes:
    """Serialize a column straight into one delimited byte payload.

    Byte-identical to :func:`repro.engine.bulk.format_bulk` on the same
    column, but the fan-out stage maps interned *pre-encoded,
    pre-terminated* byte rows and joins them once — no per-row string
    list, no whole-payload re-encode.  With numpy present and a packed
    byte column in, the dedup itself is vectorized (``np.unique`` over
    a zero-copy view, fan-out by inverse index).  ``writer`` may be a
    prepared :class:`~repro.serve.DelimitedWriter`; its buffer receives
    the payload (its delimiter wins) and its accumulated value is
    returned.
    """
    if writer is not None:
        delim = writer.delimiter
    else:
        delim = _delim_bytes(delimiter)
    eng = engine
    if eng is None:
        from repro.engine.engine import default_engine

        eng = default_engine()
    payload = b""
    inverse = None
    if (dedup and _np is not None
            and isinstance(data, (bytes, bytearray, memoryview))):
        dtype = _NP_UINT_BY_SIZE.get(_itemsize(fmt))
        if dtype is not None and len(data) >= _itemsize(fmt):
            arr = _np.frombuffer(data, dtype=dtype)
            uniq, inverse = _np.unique(arr, return_inverse=True)
            uniques = uniq.tolist()
    if inverse is not None:
        texts = _format_bits(eng, uniques, fmt, mode, tie, options)
        rows = [s.encode("ascii") + delim for s in texts]
        payload = b"".join(map(rows.__getitem__, inverse.tolist()))
    else:
        bits = ingest_bits(data, fmt)
        if bits and dedup:
            interned = dict.fromkeys(bits)
            uniques = list(interned)
            texts = _format_bits(eng, uniques, fmt, mode, tie, options)
            for b, s in zip(uniques, texts):
                interned[b] = s.encode("ascii") + delim
            payload = b"".join(map(interned.__getitem__, bits))
        elif bits:
            texts = _format_bits(eng, bits, fmt, mode, tie, options)
            payload = delim.join(s.encode("ascii") for s in texts) + delim
    if writer is not None:
        writer.write_bytes(payload)
        return writer.getvalue()
    return payload
