"""Measurement harness for the tiered engine.

Shared by ``benchmarks/bench_engine_tiers.py`` (pytest-benchmark views)
and ``tools/bench_engine.py`` (the ``BENCH_engine.json`` writer) so both
report the same quantities from the same corpora:

* wall time per value for the exact-only ``format_shortest`` path, for
  ``Engine.format`` singles, and for ``Engine.format_many`` batches;
* the tier resolution profile (what fraction of conversions the fast
  tiers settled);
* a byte-equality audit of every engine output against the exact path.

Corpus: uniform random finite non-zero binary64 bit patterns (the
fast-path literature's standard workload) plus the Schryer set for the
agreement audit.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.core.api import format_shortest
from repro.engine.engine import Engine
from repro.workloads.corpus import uniform_random
from repro.workloads.schryer import corpus as schryer_corpus

__all__ = ["engine_corpus", "run_engine_bench"]


def engine_corpus(n: int, seed: int = 2024) -> List[float]:
    """``n`` uniform random finite non-zero positive doubles."""
    return [v.to_float() for v in uniform_random(n, seed=seed)]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_engine_bench(n: int = 20000, seed: int = 2024,
                     repeats: int = 3) -> Dict:
    """Measure the engine against the exact-only path.

    Returns the dictionary ``tools/bench_engine.py`` serializes to
    ``BENCH_engine.json``.  ``mismatches`` must be 0 and
    ``fast_resolved`` at least 0.99 for the run to be meaningful; the
    caller decides what speedup to require.
    """
    values = engine_corpus(n, seed)
    audit = values + [v.to_float() for v in schryer_corpus(min(n, 2000))]

    # Exact-only reference (engine=None pins the pure algorithm).
    exact = lambda: [format_shortest(x, engine=None) for x in values]
    exact()  # warm the power caches
    t_exact = _best_of(exact, repeats)

    bench_engine = Engine()
    bench_engine.format_many(values[:64])  # build tables before timing

    def run_many():
        bench_engine.clear_cache()  # time conversions, not memo hits
        bench_engine.format_many(values)

    def run_singles():
        bench_engine.clear_cache()
        fmt_one = bench_engine.format
        for x in values:
            fmt_one(x)

    t_many = _best_of(run_many, repeats)
    t_single = _best_of(run_singles, repeats)

    # The repeated-values regime, measured honestly: a slice that fits
    # the memo, converted once, then timed on pure hits.
    hot = values[: min(len(values), bench_engine.cache_size // 2)]
    bench_engine.format_many(hot)
    t_hot = _best_of(lambda: bench_engine.format_many(hot), repeats)

    # Agreement audit on a fresh engine (empty memo) with fresh stats.
    audit_engine = Engine()
    expected = [format_shortest(x, engine=None) for x in audit]
    got = audit_engine.format_many(audit)
    mismatches = [
        {"value": repr(x), "exact": a, "engine": b}
        for x, a, b in zip(audit, expected, got) if a != b
    ]
    got_single = [audit_engine.format(x) for x in audit]
    mismatches += [
        {"value": repr(x), "exact": a, "engine": b, "api": "format"}
        for x, a, b in zip(audit, expected, got_single) if a != b
    ]

    stats = audit_engine.stats()
    resolved_fast = (stats["tier0_hits"] + stats["tier1_hits"]
                     + stats["cache_hits"])
    return {
        "corpus": {"kind": "uniform-random-bits+schryer", "n": n,
                   "seed": seed, "audit_n": len(audit)},
        "us_per_value": {
            "exact_only": t_exact * 1e6 / n,
            "engine_format": t_single * 1e6 / n,
            "engine_format_many": t_many * 1e6 / n,
            "engine_memo_hot": t_hot * 1e6 / len(hot),
        },
        "speedup": {
            "format": t_exact / t_single,
            "format_many": t_exact / t_many,
            "memo_hot": (t_exact / n) / (t_hot / len(hot)),
        },
        "fast_resolved": resolved_fast / stats["conversions"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }
