"""Measurement harness for the tiered engine.

Shared by ``benchmarks/bench_engine_tiers.py`` (pytest-benchmark views)
and ``tools/bench_engine.py`` (the ``BENCH_engine.json`` writer) so both
report the same quantities from the same corpora:

* wall time per value for the exact-only ``format_shortest`` path, for
  ``Engine.format`` singles, and for ``Engine.format_many`` batches;
* the same three quantities for fixed-format (counted-digit) requests —
  exact big-integer division vs :meth:`Engine.counted_digits` (the
  ``fixed`` section of the result);
* the read direction — exact ``read_decimal`` vs the tiered
  :class:`ReadEngine` (singles, ``read_many`` batches, memo-hot), with
  a bit-strict agreement audit that adds exact decimal midpoints, the
  forced-bailout worst case (the ``reader`` section of the result);
* the tier resolution profiles (what fraction of conversions the fast
  tiers settled);
* byte-equality audits of every engine output against the exact paths,
  for fixed format at several digit counts over uniform + Schryer.

Corpus: uniform random finite non-zero binary64 bit patterns (the
fast-path literature's standard workload) plus the Schryer set for the
agreement audits; the reader corpus is the shortest output of the same
populations plus deterministic human-style literals.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.api import format_shortest
from repro.core.fixed import fixed_digits as paper_fixed_digits
from repro.engine.engine import Engine
from repro.engine.reader import ReadEngine
from repro.floats.formats import BINARY16, BINARY32
from repro.floats.model import Flonum
from repro.reader.exact import read_decimal
from repro.workloads.corpus import (
    duplicated_random,
    uniform_random,
    zipf_random,
)
from repro.workloads.schryer import corpus as schryer_corpus

__all__ = ["engine_corpus", "reader_corpus", "run_engine_bench",
           "FIXED_BENCH_NDIGITS", "BULK_ZIPF_S", "BULK_DUP_FACTOR"]

#: Zipf skew of the bulk bench's head-heavy corpus (telemetry-shaped).
BULK_ZIPF_S = 1.3

#: Universe size divisor of the bulk corpora: ``n`` draws over
#: ``n // BULK_DUP_FACTOR`` distinct values (~25 repeats per value on
#: the flat draw, far more on the zipf head — telemetry columns repeat
#: a small working set heavily).
BULK_DUP_FACTOR = 25

#: Values per request in the warm-start bench's first-10k leg (the
#: serving shape: many small calls, not one giant batch — a giant
#: batch's intra-batch interning would hide the warm/cold difference).
WARM_REQUEST_SIZE = 100

#: Significant digits for the timed fixed-format comparison (%.6e-shaped
#: requests — the dominant real-world precision per the experimental
#: literature).
FIXED_BENCH_NDIGITS = 7

#: Digit counts the fixed agreement audit sweeps (short, typical, and
#: the 17-digit boundary where the 64-bit tier starts bailing).
FIXED_AUDIT_NDIGITS = (3, 7, 17)


def engine_corpus(n: int, seed: int = 2024) -> List[float]:
    """``n`` uniform random finite non-zero positive doubles."""
    return [v.to_float() for v in uniform_random(n, seed=seed)]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_engine_bench(n: int = 20000, seed: int = 2024,
                     repeats: int = 3) -> Dict:
    """Measure the engine against the exact-only path.

    Returns the dictionary ``tools/bench_engine.py`` serializes to
    ``BENCH_engine.json``.  ``mismatches`` must be 0 and
    ``fast_resolved`` at least 0.99 for the run to be meaningful; the
    caller decides what speedup to require.
    """
    values = engine_corpus(n, seed)
    audit = values + [v.to_float() for v in schryer_corpus(min(n, 2000))]

    # Exact-only reference (engine=None pins the pure algorithm).
    exact = lambda: [format_shortest(x, engine=None) for x in values]
    exact()  # warm the power caches
    t_exact = _best_of(exact, repeats)

    bench_engine = Engine()
    bench_engine.format_many(values[:64])  # build tables before timing

    def run_many():
        bench_engine.clear_cache()  # time conversions, not memo hits
        bench_engine.format_many(values)

    def run_singles():
        bench_engine.clear_cache()
        fmt_one = bench_engine.format
        for x in values:
            fmt_one(x)

    t_many = _best_of(run_many, repeats)
    t_single = _best_of(run_singles, repeats)

    # The repeated-values regime, measured honestly: a slice that fits
    # the memo, converted once, then timed on pure hits.
    hot = values[: min(len(values), bench_engine.cache_size // 2)]
    bench_engine.format_many(hot)
    t_hot = _best_of(lambda: bench_engine.format_many(hot), repeats)

    # Agreement audit on a fresh engine (empty memo) with fresh stats.
    audit_engine = Engine()
    expected = [format_shortest(x, engine=None) for x in audit]
    got = audit_engine.format_many(audit)
    mismatches = [
        {"value": repr(x), "exact": a, "engine": b}
        for x, a, b in zip(audit, expected, got) if a != b
    ]
    got_single = [audit_engine.format(x) for x in audit]
    mismatches += [
        {"value": repr(x), "exact": a, "engine": b, "api": "format"}
        for x, a, b in zip(audit, expected, got_single) if a != b
    ]

    stats = audit_engine.stats()
    resolved_fast = (stats["tier0_hits"] + stats["tier1_hits"]
                     + stats["cache_hits"])
    return {
        "fixed": _run_fixed_bench(n, seed, repeats),
        "reader": _run_reader_bench(n, seed, repeats),
        "bulk": _run_bulk_bench(n, seed, repeats),
        "buffer": _run_buffer_bench(n, seed, repeats),
        "binary32": _run_binary32_bench(n, seed, repeats),
        "warm": _run_warm_bench(n, seed, repeats),
        "contenders": _run_contenders_bench(n, seed, repeats),
        "corpus": {"kind": "uniform-random-bits+schryer", "n": n,
                   "seed": seed, "audit_n": len(audit),
                   "mix": "uniform"},
        "us_per_value": {
            "exact_only": t_exact * 1e6 / n,
            "engine_format": t_single * 1e6 / n,
            "engine_format_many": t_many * 1e6 / n,
            "engine_memo_hot": t_hot * 1e6 / len(hot),
        },
        "speedup": {
            "format": t_exact / t_single,
            "format_many": t_exact / t_many,
            "memo_hot": (t_exact / n) / (t_hot / len(hot)),
        },
        "fast_resolved": resolved_fast / stats["conversions"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }


def _run_fixed_bench(n: int, seed: int, repeats: int) -> Dict:
    """The fixed-format (counted-digit) side of the engine bench."""
    flos = uniform_random(n, seed=seed)
    nd = FIXED_BENCH_NDIGITS

    exact = lambda: [exact_fixed_digits(v, ndigits=nd) for v in flos]
    exact()  # warm the power caches
    t_exact = _best_of(exact, repeats)

    bench_engine = Engine()
    for v in flos[:64]:  # build tables before timing
        bench_engine.counted_digits(v, ndigits=nd)

    def run_engine():
        bench_engine.clear_cache()  # time conversions, not memo hits
        counted = bench_engine.counted_digits
        for v in flos:
            counted(v, ndigits=nd)

    t_engine = _best_of(run_engine, repeats)

    # The repeated-values regime: a slice that fits the memo, timed hot.
    hot = flos[: min(len(flos), bench_engine.cache_size // 2)]
    counted = bench_engine.counted_digits
    for v in hot:
        counted(v, ndigits=nd)

    def run_hot():
        for v in hot:
            counted(v, ndigits=nd)

    t_hot = _best_of(run_hot, repeats)

    # Agreement audit on a fresh engine: counted (printf) and paper
    # (Section 4, hashes included) semantics at several digit counts,
    # uniform + Schryer.  Capped so the full run stays interactive; the
    # cap is recorded as audit_n.
    audit_vals = flos[: min(n, 4000)] + schryer_corpus(min(n, 2000))
    audit_engine = Engine()
    mismatches = []
    for audit_nd in FIXED_AUDIT_NDIGITS:
        for v in audit_vals:
            a = exact_fixed_digits(v, ndigits=audit_nd)
            b = audit_engine.counted_digits(v, ndigits=audit_nd)
            if (a.k, a.digits) != (b.k, b.digits):
                mismatches.append({"value": repr(v), "ndigits": audit_nd,
                                   "kind": "counted", "exact": str(a),
                                   "engine": str(b)})
            pa = paper_fixed_digits(v, ndigits=audit_nd)
            pb = audit_engine.fixed_digits(v, ndigits=audit_nd)
            if (pa.k, pa.digits, pa.hashes, pa.position) != (
                    pb.k, pb.digits, pb.hashes, pb.position):
                mismatches.append({"value": repr(v), "ndigits": audit_nd,
                                   "kind": "paper", "exact": str(pa),
                                   "engine": str(pb)})

    # Resolution profile of the *timed* workload (the bench engine) —
    # the audit engine's profile is reported separately: its sweep
    # deliberately includes paper-fixed requests deep in #-mark
    # territory, where bailing out is the correct behaviour.
    bench_stats = bench_engine.stats()
    resolved_fast = bench_stats["fixed_tier1_hits"] + bench_stats["cache_hits"]
    audit_stats = audit_engine.stats()
    audit_fast = audit_stats["fixed_tier1_hits"] + audit_stats["cache_hits"]
    return {
        "ndigits": nd,
        "audit_ndigits": list(FIXED_AUDIT_NDIGITS),
        "corpus": {"kind": "uniform-random-bits+schryer", "n": n,
                   "seed": seed, "audit_n": len(audit_vals),
                   "mix": "uniform"},
        "us_per_value": {
            "exact_only": t_exact * 1e6 / n,
            "engine_counted": t_engine * 1e6 / n,
            "engine_memo_hot": t_hot * 1e6 / len(hot),
        },
        "speedup": {
            "counted": t_exact / t_engine,
            "memo_hot": (t_exact / n) / (t_hot / len(hot)),
        },
        "fast_resolved": resolved_fast / bench_stats["conversions"],
        "audit_fast_resolved": audit_fast / audit_stats["conversions"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": audit_stats,
    }


# ----------------------------------------------------------------------
# The bulk serving layer
# ----------------------------------------------------------------------

def _run_bulk_bench(n: int, seed: int, repeats: int) -> Dict:
    """The bulk layer against scalar ``format_many``/``read_many``.

    Two duplicate-bearing corpora over the same ``n // BULK_DUP_FACTOR``
    distinct-value universe: a flat draw (every distinct value equally
    likely, ~``BULK_DUP_FACTOR`` repeats each) and a zipfian draw
    (``s = BULK_ZIPF_S``, telemetry-shaped head).  The dedup-interning
    win is the ratio against the scalar batch API on the *same* column;
    the zipf speedup should exceed the flat one — more of the column
    collapses into the interning dict.  ``bulk_nodedup`` isolates the
    ingestion/emit overhead with interning off.
    """
    from repro.engine.bulk import (format_column, ingest_bits, pack_bits,
                                   read_column)

    distinct = max(1, n // BULK_DUP_FACTOR)
    flat = [v.to_float() for v in duplicated_random(n, distinct, seed=seed)]
    zipf = [v.to_float() for v in zipf_random(n, distinct, s=BULK_ZIPF_S,
                                              seed=seed)]

    scalar_engine = Engine()
    bulk_engine = Engine()
    scalar_engine.format_many(flat[:64])  # build tables before timing
    bulk_engine.format_many(flat[:64])

    def scalar_run(xs):
        scalar_engine.clear_cache()  # time conversions, not memo hits
        scalar_engine.format_many(xs)

    def bulk_run(xs, dedup=True):
        bulk_engine.clear_cache()
        format_column(xs, engine=bulk_engine, dedup=dedup)

    t_scalar_flat = _best_of(lambda: scalar_run(flat), repeats)
    t_bulk_flat = _best_of(lambda: bulk_run(flat), repeats)
    t_nodedup_flat = _best_of(lambda: bulk_run(flat, dedup=False), repeats)
    t_scalar_zipf = _best_of(lambda: scalar_run(zipf), repeats)
    t_bulk_zipf = _best_of(lambda: bulk_run(zipf), repeats)

    # The read direction on the payload the format side just produced.
    payload = "\n".join(scalar_engine.format_many(flat)) + "\n"
    texts = payload.split("\n")[:-1]
    reader = ReadEngine()
    reader.read_many(texts[:64])

    def scalar_read():
        reader.clear_cache()
        reader.read_many(texts)

    def bulk_read():
        reader.clear_cache()
        read_column(texts, engine=reader)

    t_scalar_read = _best_of(scalar_read, repeats)
    t_bulk_read = _best_of(bulk_read, repeats)

    # Byte-identity audit: every bulk route against the scalar engine,
    # both corpora plus the special population, and the narrow formats
    # through the generic per-bit path.
    audit_engine = Engine()
    specials = [0.0, -0.0, float("nan"), float("inf"), float("-inf"),
                5e-324]
    mismatches = []
    for mix, xs in (("flat", flat[: min(n, 4000)] + specials),
                    ("zipf", zipf[: min(n, 4000)] + specials)):
        want = audit_engine.format_many(xs)
        for dedup in (True, False):
            got = format_column(xs, engine=audit_engine, dedup=dedup)
            mismatches += [
                {"mix": mix, "dedup": dedup, "value": repr(x),
                 "scalar": a, "bulk": b}
                for x, a, b in zip(xs, want, got) if a != b]
    for fmt in (BINARY16, BINARY32):
        flos = uniform_random(min(n, 1500), fmt, seed=seed)
        bits = ingest_bits(flos, fmt)
        want = [audit_engine.format(v, fmt=fmt) for v in flos]
        got = format_column(pack_bits(bits, fmt), fmt,
                            engine=audit_engine)
        mismatches += [
            {"mix": fmt.name, "dedup": True, "value": repr(v),
             "scalar": a, "bulk": b}
            for v, a, b in zip(flos, want, got) if a != b]

    stats = bulk_engine.stats()
    return {
        "corpus": {"kind": "duplicated-random-bits", "n": n, "seed": seed,
                   "audit_n": 2 * (min(n, 4000) + len(specials)),
                   "distinct": distinct, "dup_factor": BULK_DUP_FACTOR,
                   "zipf_s": BULK_ZIPF_S,
                   "mix": {"flat": "uniform draw over the universe",
                           "zipf": f"zipf s={BULK_ZIPF_S} over the "
                                   "universe"}},
        "us_per_value": {
            "scalar_format_many_flat": t_scalar_flat * 1e6 / n,
            "bulk_flat": t_bulk_flat * 1e6 / n,
            "bulk_nodedup_flat": t_nodedup_flat * 1e6 / n,
            "scalar_format_many_zipf": t_scalar_zipf * 1e6 / n,
            "bulk_zipf": t_bulk_zipf * 1e6 / n,
            "scalar_read_many": t_scalar_read * 1e6 / n,
            "bulk_read": t_bulk_read * 1e6 / n,
        },
        "speedup": {
            "uniform": t_scalar_flat / t_bulk_flat,
            "zipf": t_scalar_zipf / t_bulk_zipf,
            "nodedup": t_scalar_flat / t_nodedup_flat,
            "read": t_scalar_read / t_bulk_read,
        },
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }


def _run_binary32_bench(n: int, seed: int, repeats: int) -> Dict:
    """The engine on binary32: the narrow-format acceptance numbers.

    Same shape as the top-level free-format section — exact-only
    baseline vs ``Engine.format`` — on uniform random finite non-zero
    binary32 values, with a byte-equality audit and the tier resolution
    profile.
    """
    flos = uniform_random(n, BINARY32, seed=seed)

    exact = lambda: [format_shortest(v, engine=None) for v in flos]
    exact()  # warm the power caches
    t_exact = _best_of(exact, repeats)

    bench_engine = Engine()
    for v in flos[:64]:  # build tables before timing
        bench_engine.format(v, fmt=BINARY32)

    def run_engine():
        bench_engine.clear_cache()
        fmt_one = bench_engine.format
        for v in flos:
            fmt_one(v, fmt=BINARY32)

    t_engine = _best_of(run_engine, repeats)

    audit_engine = Engine()
    expected = [format_shortest(v, engine=None) for v in flos]
    got = [audit_engine.format(v, fmt=BINARY32) for v in flos]
    mismatches = [
        {"value": repr(v), "exact": a, "engine": b}
        for v, a, b in zip(flos, expected, got) if a != b]

    stats = audit_engine.stats()
    resolved_fast = (stats["tier0_hits"] + stats["tier1_hits"]
                     + stats["cache_hits"])
    return {
        "corpus": {"kind": "uniform-random-bits", "n": n, "seed": seed,
                   "audit_n": n, "mix": "uniform"},
        "us_per_value": {
            "exact_only": t_exact * 1e6 / n,
            "engine_format": t_engine * 1e6 / n,
        },
        "speedup": {"format": t_exact / t_engine},
        "fast_resolved": resolved_fast / stats["conversions"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }


# ----------------------------------------------------------------------
# The byte-plane pipeline
# ----------------------------------------------------------------------

def _run_buffer_bench(n: int, seed: int, repeats: int) -> Dict:
    """The byte-plane pipeline against the row-at-a-time bulk path.

    Same duplicate-bearing corpora as the bulk section (flat and zipf
    draws over ``n // BULK_DUP_FACTOR`` distinct values).  Contenders:

    * **parse** — :func:`~repro.engine.buffer.parse_buffer` of the
      delimited payload vs the row path (split to ``str`` rows,
      ``read_column``, per-row ``to_bits`` — what ``read_bulk`` did
      before the plane pipeline);
    * **format** — :func:`~repro.engine.buffer.format_buffer` of the
      packed column vs ``format_column`` + ``DelimitedWriter.extend``.

    Throughput is reported in MB/s over the *text plane* (the
    delimited payload each side consumes or produces — plane bytes /
    best wall time), the framing the Lemire number-parsing literature
    uses.  The parse side is where the strings used to be made, so
    that's where the plane pipeline wins big; the format side was
    already conversion-bound after dedup (see ``docs/benchmarks.md``),
    so the acceptance gate is on the parse leg and the combined
    parse+format pipeline.  The byte/bit-identity audit (flat, zipf,
    a specials plane with NaN/infinity payload texts and denormals,
    and the binary16/32 narrow formats) must always be clean.
    """
    from repro.engine.buffer import format_buffer, parse_buffer
    from repro.engine.bulk import (format_column, ingest_bits, pack_bits,
                                   read_column)
    from repro.serve.writer import DelimitedWriter

    distinct = max(1, n // BULK_DUP_FACTOR)
    flat = [v.to_float() for v in duplicated_random(n, distinct, seed=seed)]
    zipf = [v.to_float() for v in zipf_random(n, distinct, s=BULK_ZIPF_S,
                                              seed=seed)]

    row_eng = Engine()
    buf_eng = Engine()
    row_reader = ReadEngine()
    buf_reader = ReadEngine()
    row_eng.format_many(flat[:64])  # build tables before timing
    buf_eng.format_many(flat[:64])

    def row_format(packed):
        row_eng.clear_cache()  # time conversions, not memo hits
        texts = format_column(packed, engine=row_eng)
        return DelimitedWriter().extend(texts).getvalue()

    def buf_format(packed):
        buf_eng.clear_cache()
        return format_buffer(packed, engine=buf_eng)

    def row_parse(payload):
        row_reader.clear_cache()
        return [v.to_bits() for v in read_column(payload,
                                                 engine=row_reader)]

    def buf_parse(payload):
        buf_reader.clear_cache()
        return parse_buffer(payload, engine=buf_reader)

    out = {"us_per_value": {}, "mb_per_s": {}, "plane_bytes": {},
           "speedup": {}}
    pipe_row = pipe_buf = 0.0
    for mix, xs in (("flat", flat), ("zipf", zipf)):
        packed = pack_bits(ingest_bits(xs))
        payload = row_format(packed)
        t_row_fmt = _best_of(lambda: row_format(packed), repeats)
        t_buf_fmt = _best_of(lambda: buf_format(packed), repeats)
        t_row_parse = _best_of(lambda: row_parse(payload), repeats)
        t_buf_parse = _best_of(lambda: buf_parse(payload), repeats)
        plane = len(payload)
        out["plane_bytes"][f"parse_{mix}"] = plane
        out["plane_bytes"][f"format_{mix}"] = plane
        out["us_per_value"][f"row_format_{mix}"] = t_row_fmt * 1e6 / n
        out["us_per_value"][f"buffer_format_{mix}"] = t_buf_fmt * 1e6 / n
        out["us_per_value"][f"row_parse_{mix}"] = t_row_parse * 1e6 / n
        out["us_per_value"][f"buffer_parse_{mix}"] = t_buf_parse * 1e6 / n
        out["mb_per_s"][f"parse_{mix}"] = plane / t_buf_parse / 1e6
        out["mb_per_s"][f"format_{mix}"] = plane / t_buf_fmt / 1e6
        out["speedup"][f"parse_{mix}"] = t_row_parse / t_buf_parse
        out["speedup"][f"format_{mix}"] = t_row_fmt / t_buf_fmt
        out["speedup"][f"pipeline_{mix}"] = ((t_row_parse + t_row_fmt)
                                             / (t_buf_parse + t_buf_fmt))
        pipe_row += t_row_parse + t_row_fmt
        pipe_buf += t_buf_parse + t_buf_fmt

    # Byte/bit-identity audit: payloads and parsed bits must match the
    # row path exactly, on the timed corpora, a specials plane, and the
    # narrow formats.
    audit_eng = Engine()
    audit_reader = ReadEngine()
    mismatches = []
    specials = [0.0, -0.0, float("nan"), float("inf"), float("-inf"),
                5e-324, -5e-324]
    special_rows = (b"nan\n-nan\ninf\n-inf\ninfinity\n+Infinity\n"
                    b"5e-324\n-4.9406564584124654e-324\n0\n-0.0\n")
    audit_n = 0
    for mix, xs in (("flat", flat[: min(n, 4000)] + specials),
                    ("zipf", zipf[: min(n, 4000)] + specials)):
        audit_n += len(xs)
        packed = pack_bits(ingest_bits(xs))
        texts = format_column(packed, engine=audit_eng)
        want_payload = DelimitedWriter().extend(texts).getvalue()
        got_payload = format_buffer(packed, engine=audit_eng)
        if got_payload != want_payload:
            mismatches.append({"mix": mix, "kind": "format-payload",
                               "want_bytes": len(want_payload),
                               "got_bytes": len(got_payload)})
        want_bits = [v.to_bits() for v in
                     read_column(want_payload, engine=audit_reader)]
        got_bits = parse_buffer(want_payload, engine=audit_reader)
        mismatches += [
            {"mix": mix, "kind": "parse-bits", "row": t,
             "want": f"{w:#x}", "got": f"{g:#x}"}
            for t, w, g in zip(texts, want_bits, got_bits) if w != g]
    got_special = parse_buffer(special_rows, engine=audit_reader)
    want_special = [v.to_bits() for v in
                    read_column(special_rows, engine=audit_reader)]
    audit_n += len(want_special)
    mismatches += [
        {"mix": "specials", "kind": "parse-bits", "row": i,
         "want": f"{w:#x}", "got": f"{g:#x}"}
        for i, (w, g) in enumerate(zip(want_special, got_special))
        if w != g]
    for fmt in (BINARY16, BINARY32):
        flos = uniform_random(min(n, 1500), fmt, seed=seed)
        audit_n += len(flos)
        packed = pack_bits(ingest_bits(flos, fmt), fmt)
        texts = format_column(packed, fmt, engine=audit_eng)
        want_payload = DelimitedWriter().extend(texts).getvalue()
        got_payload = format_buffer(packed, fmt, engine=audit_eng)
        if got_payload != want_payload:
            mismatches.append({"mix": fmt.name, "kind": "format-payload",
                               "want_bytes": len(want_payload),
                               "got_bytes": len(got_payload)})
        want_bits = [v.to_bits() for v in
                     read_column(want_payload, fmt, engine=audit_reader)]
        got_bits = parse_buffer(want_payload, fmt, engine=audit_reader)
        mismatches += [
            {"mix": fmt.name, "kind": "parse-bits", "row": t,
             "want": f"{w:#x}", "got": f"{g:#x}"}
            for t, w, g in zip(texts, want_bits, got_bits) if w != g]

    out["speedup"]["pipeline"] = pipe_row / pipe_buf
    return {
        "corpus": {"kind": "duplicated-random-bits", "n": n, "seed": seed,
                   "audit_n": audit_n, "distinct": distinct,
                   "dup_factor": BULK_DUP_FACTOR, "zipf_s": BULK_ZIPF_S,
                   "mix": {"flat": "uniform draw over the universe",
                           "zipf": f"zipf s={BULK_ZIPF_S} over the "
                                   "universe"}},
        "plane_bytes": out["plane_bytes"],
        "us_per_value": out["us_per_value"],
        "mb_per_s": out["mb_per_s"],
        "speedup": out["speedup"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": buf_reader.stats(),
    }


def _run_warm_bench(n: int, seed: int, repeats: int) -> Dict:
    """Warm start (snapshot restore) against cold start.

    Measures the two costs the snapshot fabric removes, on the
    telemetry-shaped zipf corpus:

    * **startup** — time from nothing (global table cache cleared) to
      the first conversion out of a fresh engine.  Cold pays the Grisu
      power-cache build; warm restores the serialized tables.
    * **first 10k requests** — the first ``min(n, 10000)`` values
      through the fresh engine in request-sized batches of
      ``WARM_REQUEST_SIZE`` (the serving shape: many small calls, not
      one giant batch).  Warm starts with the donor's memo and the hot
      dictionary already in place.

    The identity audit (warm output byte-equal to cold output over the
    whole corpus) is the gate that always applies; the timing ratios
    are advisory on ``--quick`` runs.
    """
    from repro.engine.snapshot import build_snapshot, hot_entries
    from repro.engine.tables import clear_tables
    from repro.fastpath.diyfp import clear_power_cache
    import collections as _collections

    distinct = max(1, n // BULK_DUP_FACTOR)
    flos = zipf_random(n, distinct, s=BULK_ZIPF_S, seed=seed, signed=True)
    values = [v.to_float() for v in flos]
    first = values[: min(n, 10000)]
    requests = [first[i:i + WARM_REQUEST_SIZE]
                for i in range(0, len(first), WARM_REQUEST_SIZE)]

    # Build the snapshot once, outside every timed region: a donor
    # engine plays the corpus, the head of the frequency distribution
    # becomes the hot dictionary (exactly tools/warm_snapshot.py).
    donor = Engine()
    donor.format_many(values)
    head = [v for v, _ in _collections.Counter(flos).most_common(512)]
    snap = build_snapshot(["binary64"], engine=donor,
                          hot=hot_entries(head, engine=donor))

    probe = values[0]

    def go_cold():
        # What a fresh process pays: no FormatTables, no cached powers
        # of ten (the table build's dominant cost).
        clear_tables()
        clear_power_cache()

    def cold_start():
        go_cold()
        Engine().format(probe)

    def warm_start():
        go_cold()
        Engine(snapshot=snap).format(probe)

    def cold_first():
        go_cold()
        eng = Engine()
        for req in requests:
            eng.format_many(req)

    def warm_first():
        go_cold()
        eng = Engine(snapshot=snap)
        for req in requests:
            eng.format_many(req)

    # Interleaved best-of: a machine slowdown mid-bench degrades both
    # contenders alike instead of skewing the reported ratios.
    t_cold_start = t_warm_start = float("inf")
    t_cold_first = t_warm_first = float("inf")
    for _ in range(repeats):
        t_cold_start = min(t_cold_start, _best_of(cold_start, 1))
        t_warm_start = min(t_warm_start, _best_of(warm_start, 1))
        t_cold_first = min(t_cold_first, _best_of(cold_first, 1))
        t_warm_first = min(t_warm_first, _best_of(warm_first, 1))

    # Identity audit: the warm engine's bytes over the whole corpus
    # (plus specials) against a cold engine's.
    clear_tables()
    cold_eng = Engine()
    warm_eng = Engine(snapshot=snap)
    specials = [0.0, -0.0, float("nan"), float("inf"), float("-inf"),
                5e-324]
    audit = values + specials
    want = cold_eng.format_many(audit)
    got = warm_eng.format_many(audit)
    mismatches = [
        {"value": repr(x), "cold": a, "warm": b}
        for x, a, b in zip(audit, want, got) if a != b
    ]

    stats = warm_eng.stats()
    restored = warm_eng.snapshot_restored or {}
    return {
        "corpus": {"kind": "zipf-random-bits", "n": n, "seed": seed,
                   "audit_n": len(audit), "distinct": distinct,
                   "zipf_s": BULK_ZIPF_S,
                   "mix": f"zipf s={BULK_ZIPF_S} over the universe"},
        "snapshot": {
            "formats": restored.get("formats", 0),
            "write_memo": restored.get("write", 0),
            "read_memo": restored.get("read", 0),
            "hot": restored.get("hot", 0),
        },
        "startup_ms": {
            "cold": t_cold_start * 1e3,
            "warm": t_warm_start * 1e3,
        },
        "us_per_value": {
            "cold_first_10k": t_cold_first * 1e6 / len(first),
            "warm_first_10k": t_warm_first * 1e6 / len(first),
        },
        "speedup": {
            "startup": t_cold_start / t_warm_start,
            "first_10k": t_cold_first / t_warm_first,
        },
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }


# ----------------------------------------------------------------------
# The read direction
# ----------------------------------------------------------------------

def reader_corpus(n: int, seed: int = 2024) -> List[str]:
    """Mixed decimal literals: the round-trip workload.

    Shortest engine output of ``n`` uniform random doubles (the strings
    a round-tripping system actually re-reads) and of ``n // 2``
    Schryer hard cases, plus ``n // 4`` deterministic human-style
    literals (short decimals, integers, scientific notation), shuffled
    together.  The proportions are size-invariant so ``--quick`` and
    full runs measure the same mix.
    """
    eng = Engine()
    texts = eng.format_many(engine_corpus(n, seed))
    texts += [format_shortest(v) for v in schryer_corpus(n // 2)]
    rng = random.Random(seed ^ 0xBEEF)
    for _ in range(n // 4):
        kind = rng.randrange(3)
        if kind == 0:
            texts.append(f"{rng.randrange(10**6)}"
                         f".{rng.randrange(10**6):06d}")
        elif kind == 1:
            texts.append(f"{rng.randrange(1, 10**19)}"
                         f"e{rng.randrange(-300, 300)}")
        else:
            texts.append(str(rng.randrange(10**9)))
    rng.shuffle(texts)
    return texts


def _midpoint_literals(count: int, seed: int) -> List[str]:
    """Exact decimal midpoints between consecutive doubles.

    Every one is a genuine rounding tie: the interval tier must bail
    and the exact tier must apply ties-to-even — the reader audit's
    adversarial population.
    """
    out: List[str] = []
    for v in uniform_random(count, seed=seed ^ 1):
        d, e = (v.f << 1) + 1, v.e - 1  # midpoint = d * 2**e
        if e >= 0:
            out.append(str(d << e))
        else:
            out.append(f"{d * 5**-e}e{e}")
    return out


def _same_flonum(a: Flonum, b: Flonum) -> bool:
    """Bit-strict agreement (``Flonum.__eq__`` lets ``+0 == -0`` pass)."""
    if a.is_nan or b.is_nan:
        return a.is_nan and b.is_nan
    if not a.is_finite or not b.is_finite:
        return a.is_finite == b.is_finite and a.sign == b.sign
    return (a.sign, a.f, a.e) == (b.sign, b.f, b.e)


def _run_reader_bench(n: int, seed: int, repeats: int) -> Dict:
    """The read (decimal→binary) side of the engine bench."""
    texts = reader_corpus(n, seed)
    total = len(texts)

    exact = lambda: [read_decimal(t) for t in texts]
    exact()  # warm the power caches

    reader = ReadEngine()
    reader.read_many(texts[:64])  # build tables before timing

    def run_singles():
        reader.clear_cache()  # time conversions, not memo hits
        read_one = reader.read
        for t in texts:
            read_one(t)

    def run_many():
        reader.clear_cache()
        reader.read_many(texts)

    # Interleave the contenders within each repeat round so a machine
    # slowdown mid-bench degrades all of them alike instead of skewing
    # the reported ratios (best-of still taken per contender).
    t_exact = t_single = t_many = float("inf")
    for _ in range(repeats):
        t_exact = min(t_exact, _best_of(exact, 1))
        t_single = min(t_single, _best_of(run_singles, 1))
        t_many = min(t_many, _best_of(run_many, 1))

    # The repeated-literal regime: a slice that fits the memo, timed hot.
    hot = texts[: min(total, reader.cache_size // 2)]
    reader.read_many(hot)
    t_hot = _best_of(lambda: reader.read_many(hot), repeats)

    # Resolution profile of the timed workload: one cold pass, fresh
    # stats and memo.
    reader.reset_stats()
    reader.clear_cache()
    reader.read_many(texts)
    stats = reader.stats()
    resolved_fast = (stats["read_tier0_hits"] + stats["read_tier1_hits"]
                     + stats["read_specials"] + stats["read_cache_hits"])

    # Bit-strict agreement audit on a fresh engine; the corpus plus
    # exact decimal midpoints (forced tier bailouts, tie-to-even).
    audit_texts = texts + _midpoint_literals(min(n, 400), seed)
    audit_engine = ReadEngine()
    mismatches = []
    for t in audit_texts:
        a = read_decimal(t)
        b = audit_engine.read(t)
        if not _same_flonum(a, b):
            mismatches.append({"text": t, "exact": repr(a),
                               "engine": repr(b)})
    return {
        "corpus": {"kind": "engine-shortest+schryer+literals", "n": total,
                   "seed": seed, "audit_n": len(audit_texts),
                   "mix": "shortest+schryer+human"},
        "us_per_value": {
            "exact_only": t_exact * 1e6 / total,
            "engine_read": t_single * 1e6 / total,
            "engine_read_many": t_many * 1e6 / total,
            "engine_memo_hot": t_hot * 1e6 / len(hot),
        },
        "speedup": {
            "read": t_exact / t_single,
            "read_many": t_exact / t_many,
            "memo_hot": (t_exact / total) / (t_hot / len(hot)),
        },
        "fast_resolved": resolved_fast / stats["read_conversions"],
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }


#: The write-side tier orderings the contenders bench races, and the
#: read-side ones.  The ``*_only`` lanes have no fast fallback, so their
#: bail/tier-2 rates are the never-bail claims the gates pin at zero.
CONTENDER_WRITE_ORDERS = {
    "grisu3_first": ("tier0", "grisu3"),
    "schubfach_first": ("tier0", "schubfach"),
    "schubfach_only": ("schubfach",),
}
CONTENDER_READ_ORDERS = {
    "window_first": ("tier0", "window"),
    "lemire_first": ("tier0", "lemire"),
    "lemire_only": ("lemire",),
}


def _contender_specials(n: int, seed: int) -> List[float]:
    """Denormals, power boundaries, decimal ties and torture values,
    tiled to ~``n`` — the corpus where fast tiers historically bail."""
    from repro.workloads.corpus import (
        decimal_ties,
        denormals,
        power_boundaries,
        torture_floats,
    )

    base = [v.to_float()
            for v in (denormals() + power_boundaries() + decimal_ties()
                      + torture_floats())]
    rng = random.Random(seed ^ 0xC0DE)
    out = list(base)
    while len(out) < n:
        out.append(rng.choice(base))
    return out[:n]


def _certified_literals(n: int, seed: int) -> List[str]:
    """In-range literals of <= 17 significant digits — binary64's
    certified no-fallback range for the lemire lane."""
    rng = random.Random(seed ^ 0x1E51)
    out = []
    for _ in range(n):
        nd = rng.randrange(1, 18)
        d = rng.randrange(10 ** (nd - 1), 10 ** nd)
        out.append(f"{d}e{rng.randrange(-307, 308 - nd)}")
    return out


def _run_contenders_bench(n: int, seed: int, repeats: int) -> Dict:
    """Race the modern-algorithm lanes against the classic orderings.

    Write side: ``grisu3_first`` (the default order), ``schubfach_first``
    and ``schubfach_only`` over three corpora — ``flat`` (uniform random
    bits), ``zipf`` (telemetry-shaped duplicates) and ``specials``
    (denormals/boundaries/ties/torture).  Read side: ``window_first``
    (the default), ``lemire_first`` and ``lemire_only`` over the
    certified-digit literal corpus.  Every ordering is audited for byte
    identity against the exact-only order; per-ordering bail rates and
    exact-tier entries are recorded, and the fastest ordering per corpus
    is declared the winner — tier ordering is a measured, per-corpus
    decision, not a creed.
    """
    corpora = {
        "flat": engine_corpus(n, seed),
        "zipf": [v.to_float() for v in
                 zipf_random(n, max(n // BULK_DUP_FACTOR, 1),
                             BULK_ZIPF_S, seed=seed)],
        "specials": _contender_specials(min(n, 2000), seed),
    }
    exact_eng = Engine(tier_order=(), cache_size=0)
    mismatches: List[Dict] = []
    us: Dict[str, Dict[str, float]] = {}
    bail: Dict[str, Dict[str, float]] = {}
    winners: Dict[str, str] = {}
    stats: Dict = {}
    audit_n = 0
    for mix, values in corpora.items():
        want = exact_eng.format_many(values)
        audit_n += len(values)
        us[mix] = {}
        bail[mix] = {}
        for name, order in CONTENDER_WRITE_ORDERS.items():
            eng = Engine(tier_order=order, cache_size=0)
            got = eng.format_many(values)  # also warms the lane tables
            mismatches += [
                {"mix": mix, "ordering": name, "value": repr(x),
                 "exact": a, "engine": b}
                for x, a, b in zip(values, want, got) if a != b
            ]
            eng.reset_stats()
            t = _best_of(lambda: eng.format_many(values), repeats)
            us[mix][name] = t * 1e6 / len(values)
            s = eng.stats()
            bail[mix][name] = s["bail_rate"]["write"]
            if mix == "flat" and name == "schubfach_only":
                stats = s
        winners[mix] = min(us[mix], key=us[mix].get)

    lits = _certified_literals(n, seed)
    want_v = [read_decimal(t) for t in lits[: min(n, 2000)]]
    us["read_certified"] = {}
    tier2: Dict[str, int] = {}
    for name, order in CONTENDER_READ_ORDERS.items():
        eng = ReadEngine(tier_order=order, cache_size=0)
        got_v = eng.read_many(lits)  # also warms the lane tables
        mismatches += [
            {"mix": "read_certified", "ordering": name, "text": t,
             "exact": repr(a), "engine": repr(b)}
            for t, a, b in zip(lits, want_v, got_v)
            if not _same_flonum(a, b)
        ]
        eng.reset_stats()
        t = _best_of(lambda: eng.read_many(lits), repeats)
        us["read_certified"][name] = t * 1e6 / len(lits)
        tier2[name] = eng.stats()["read_tier2_calls"]
    winners["read_certified"] = min(us["read_certified"],
                                    key=us["read_certified"].get)
    audit_n += len(want_v)

    return {
        "corpus": {"kind": "uniform+zipf+specials+certified-literals",
                   "n": n, "seed": seed, "audit_n": audit_n,
                   "mix": "flat+zipf+specials mix, certified reads"},
        "orderings": {k: list(v)
                      for k, v in CONTENDER_WRITE_ORDERS.items()},
        "read_orderings": {k: list(v)
                           for k, v in CONTENDER_READ_ORDERS.items()},
        "us_per_value": us,
        "bail_rate": bail,
        "read_tier2_calls": tier2,
        "winners": winners,
        "mismatches": len(mismatches),
        "mismatch_samples": mismatches[:10],
        "stats": stats,
    }
