"""Self-verification battery: cross-check every engine against the others.

A downstream adopter's smoke test: run N sampled values of a format
through all the independent implementations in this package (and the
host, for binary64) and report any disagreement.  Used by
``examples/self_check.py`` and the test suite; the design principle is
the reproduction's own — every component is validated by at least one
*independently constructed* oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.baselines.naive_fixed import exact_fixed_digits, fixed_digits_loop
from repro.core.backends import shortest_digits_bignat
from repro.core.dragon import shortest_digits
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import ReaderMode
from repro.fastpath import counted_fixed, grisu_shortest
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.format.printf import format_printf
from repro.format.repr_shortest import py_repr
from repro.reader.algorithm_r import algorithm_r
from repro.reader.bellerophon import bellerophon
from repro.reader.exact import read_fraction

__all__ = ["VerificationReport", "verify_format", "sample_values"]


@dataclass
class VerificationReport:
    """Aggregate outcome of one verification run."""

    format_name: str
    checked: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def record(self, kind: str, v: Flonum, detail: str = "") -> None:
        self.mismatches.append(f"{kind}: {v!r} {detail}".strip())

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (f"{self.format_name}: {self.checked} values checked "
                f"across engines — {status}")


def sample_values(fmt: FloatFormat, n: int, seed: int = 0) -> List[Flonum]:
    """Deterministic positive sample mixing uniform and boundary values."""
    rng = random.Random(seed)
    out: List[Flonum] = []
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    for _ in range(max(n - 8, 0)):
        f = rng.randrange(lo, hi + 1)
        e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        out.append(Flonum.finite(0, f, e, fmt))
    for f, e in ((1, fmt.min_e), (hi, fmt.max_e), (lo, fmt.min_e),
                 ((lo, min(0, fmt.max_e)) if fmt.max_e >= 0
                  else (lo, fmt.max_e)),
                 (hi, fmt.min_e), (lo + 1, 0 if fmt.max_e >= 0 else fmt.max_e),
                 (hi - 1, fmt.min_e), (lo, fmt.max_e)):
        try:
            out.append(Flonum.finite(0, f, e, fmt))
        except Exception:
            continue
    return out[:n] if len(out) > n else out


def verify_format(fmt: FloatFormat = BINARY64, n: int = 200,
                  seed: int = 0) -> VerificationReport:
    """Cross-validate all engines on ``n`` sampled values of ``fmt``."""
    report = VerificationReport(format_name=fmt.name)
    host_checks = fmt is BINARY64 or fmt == BINARY64
    for v in sample_values(fmt, n, seed):
        report.checked += 1
        _check_shortest_engines(v, report)
        _check_fixed_engines(v, report)
        _check_readers(v, report)
        _check_surfaces(v, report)
        if host_checks:
            _check_host_oracles(v, report)
    return report


def _check_shortest_engines(v: Flonum, report: VerificationReport) -> None:
    spec = shortest_digits_rational(v, mode=ReaderMode.NEAREST_EVEN)
    fast = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
    if (spec.k, spec.digits) != (fast.k, fast.digits):
        report.record("dragon-vs-rational", v, f"{fast} != {spec}")
    limbs = shortest_digits_bignat(v, mode=ReaderMode.NEAREST_EVEN)
    if (limbs.k, limbs.digits) != (fast.k, fast.digits):
        report.record("bignat-vs-int", v, f"{limbs} != {fast}")
    grisu = grisu_shortest(v)
    if grisu is not None:
        unknown = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        if (grisu.k, grisu.digits) != (unknown.k, unknown.digits):
            report.record("grisu-vs-exact", v, f"{grisu} != {unknown}")


def _check_fixed_engines(v: Flonum, report: VerificationReport) -> None:
    n = min(12, v.fmt.decimal_digits_to_distinguish())
    one_shot = exact_fixed_digits(v, ndigits=n)
    loop = fixed_digits_loop(v, n)
    if (one_shot.k, one_shot.digits) != (loop.k, loop.digits):
        report.record("fixed-loop-vs-division", v, f"{loop} != {one_shot}")
    counted = counted_fixed(v, n)
    if counted is not None and (counted.k, counted.digits) != (
            one_shot.k, one_shot.digits):
        report.record("counted-vs-exact", v, f"{counted} != {one_shot}")
    # The paper's fixed format: integer implementation vs rational spec.
    from repro.core.fixed import fixed_digits
    from repro.core.fixed_rational import fixed_digits_rational

    ours = fixed_digits(v, ndigits=n)
    spec = fixed_digits_rational(v, ndigits=n)
    if (ours.k, ours.digits, ours.hashes) != (spec.k, spec.digits,
                                              spec.hashes):
        report.record("fixed-vs-rational-spec", v, f"{ours} != {spec}")


def _check_surfaces(v: Flonum, report: VerificationReport) -> None:
    """String surfaces: scheme, hex (radix-2 only), truncated reader."""
    from repro.compat.scheme import number_to_string, string_to_number
    from repro.core.api import format_shortest
    from repro.reader.truncated import read_decimal_truncated

    scheme = string_to_number(number_to_string(v), v.fmt)
    if scheme != v:
        report.record("scheme-roundtrip", v, f"{scheme!r}")
    text = format_shortest(v)
    trunc = read_decimal_truncated(text, v.fmt)
    if trunc != v:
        report.record("truncated-reader", v, f"{trunc!r}")
    if v.fmt.radix == 2 and v.fmt.has_encoding:
        from repro.format.hexfloat import format_hex, parse_hex

        hexed = parse_hex(format_hex(v), v.fmt)
        if hexed != v:
            report.record("hexfloat-roundtrip", v)


def _check_readers(v: Flonum, report: VerificationReport) -> None:
    r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
    frac = r.to_fraction()
    back = read_fraction(frac, v.fmt)
    if back != v:
        report.record("roundtrip", v, f"read back {back!r}")
    ar = algorithm_r(frac.numerator, frac.denominator, v.fmt)
    if ar != v:
        report.record("algorithm-r", v, f"read back {ar!r}")


def _check_host_oracles(v: Flonum, report: VerificationReport) -> None:
    x = v.to_float()
    if py_repr(x) != repr(x):
        report.record("repr", v, f"{py_repr(x)} != {repr(x)}")
    if float(py_repr(x)) != x:
        report.record("host-read", v)
    spec = "%.17e"
    if format_printf(spec, x) != spec % x:
        report.record("printf", v)
    # Bellerophon from the repr's parsed parts.
    from repro.reader.parse import parse_decimal

    parsed = parse_decimal(repr(x))
    got = bellerophon(parsed.digits, parsed.exponent).value
    if got != v:
        report.record("bellerophon", v, f"{got!r}")
