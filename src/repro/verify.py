"""Self-verification battery: cross-check every engine against the others.

A downstream adopter's smoke test: run N sampled values of a format
through all the independent implementations in this package (and the
host, for binary64) and report any disagreement.  Used by
``examples/self_check.py``, the test suite and the nightly CI fuzz job
(``python -m repro.verify``); the design principle is the reproduction's
own — every component is validated by at least one *independently
constructed* oracle.

The battery is tier-aware: every check is tagged with the conversion
path it exercises (``free/tier0``, ``fixed/engine-counted``, ...) and the
report carries per-tier check and mismatch counts, so a regression in
one tier of the engine is visible as that tier's counter, not just a
flat failure.  Oracles per path:

=====================  =================================================
path                   independent oracles
=====================  =================================================
free (shortest)        Section-2 rational spec, limb bignum port,
                       Grisu3 self-certification, host ``repr``
fixed (paper, ``#``)   Section-4 rational spec (``fixed_digits_rational``)
fixed (counted/printf) exact integer division *and* a Fraction
                       re-implementation here, host ``%``-formatting
readers                round-trip through Bellerophon / Algorithm R /
                       the tiered read engine
round trip             print→parse→print byte identity and
                       parse→print→parse bit identity per read tier,
                       host ``float()`` as the binary64 oracle
                       (``python -m repro.verify --roundtrip``)
buffer                 the byte-plane pipeline
                       (``parse_buffer``/``format_buffer``) against the
                       scalar engines, byte/bit-identical with per-tier
                       mismatch attribution
                       (``python -m repro.verify --buffer``)
chaos                  the bulk byte-identity battery replayed under
                       injected worker crashes, shard stalls, payload
                       corruption and fast-tier raises — outputs must
                       stay byte-identical to the fault-free run, every
                       fault must be accounted for in ``stats()``, and
                       only typed ``ReproError`` subclasses may escape
                       (``python -m repro.verify --chaos``)
=====================  =================================================
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.baselines.naive_fixed import exact_fixed_digits, fixed_digits_loop
from repro.core.backends import shortest_digits_bignat
from repro.core.dragon import shortest_digits
from repro.core.rational import shortest_digits_rational
from repro.core.rounding import ReaderMode, TieBreak
from repro.engine import Engine, ReadEngine, tables_for
from repro.engine.tier0 import tier0_digits
from repro.fastpath import counted_fixed, grisu_shortest
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.format.printf import format_printf
from repro.format.repr_shortest import py_repr
from repro.reader.algorithm_r import algorithm_r
from repro.reader.bellerophon import bellerophon
from repro.reader.exact import read_decimal, read_fraction
from repro.workloads.corpus import (
    decimal_ties,
    denormals,
    power_boundaries,
    torture_floats,
)

__all__ = ["VerificationReport", "verify_format", "verify_roundtrip",
           "verify_bulk", "verify_buffer", "verify_chaos", "verify_warm",
           "verify_contenders", "verify_control", "sample_values",
           "roundtrip_values", "counted_digits_rational", "main"]

#: Significant-digit probes for the counted/fixed checks (the engine's
#: fast tier certifies at most 17; 17 is also binary64's distinguishing
#: count, so both acceptance and bailout paths are exercised).
_NDIGIT_PROBES = (1, 3, 7, 13, 17)
#: Absolute-position probes (fractional, units and a coarser stop).
_POSITION_PROBES = (-6, -1, 0, 2)


@dataclass
class VerificationReport:
    """Aggregate outcome of one verification run."""

    format_name: str
    checked: int = 0
    mismatches: List[str] = field(default_factory=list)
    tier_checks: Dict[str, int] = field(default_factory=dict)
    tier_mismatches: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def check(self, tier: str) -> None:
        """Count one comparison against the named conversion path."""
        self.tier_checks[tier] = self.tier_checks.get(tier, 0) + 1

    def record(self, kind: str, v: Flonum, detail: str = "") -> None:
        self.mismatches.append(f"{kind}: {v!r} {detail}".strip())
        self.tier_mismatches[kind] = self.tier_mismatches.get(kind, 0) + 1

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (f"{self.format_name}: {self.checked} values checked "
                f"across engines — {status}")

    def tier_summary(self) -> str:
        """Per-tier check/mismatch table, one line per conversion path."""
        lines = [self.summary()]
        for tier in sorted(self.tier_checks):
            bad = self.tier_mismatches.get(tier, 0)
            status = "ok" if not bad else f"{bad} MISMATCHES"
            lines.append(f"  {tier:<24} {self.tier_checks[tier]:>7} checks"
                         f"  {status}")
        stray = set(self.tier_mismatches) - set(self.tier_checks)
        for tier in sorted(stray):  # pragma: no cover - defensive
            lines.append(f"  {tier:<24} {'?':>7} checks"
                         f"  {self.tier_mismatches[tier]} MISMATCHES")
        return "\n".join(lines)


def sample_values(fmt: FloatFormat, n: int, seed: int = 0) -> List[Flonum]:
    """Deterministic positive sample mixing uniform and boundary values."""
    rng = random.Random(seed)
    out: List[Flonum] = []
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    for _ in range(max(n - 8, 0)):
        f = rng.randrange(lo, hi + 1)
        e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        out.append(Flonum.finite(0, f, e, fmt))
    for f, e in ((1, fmt.min_e), (hi, fmt.max_e), (lo, fmt.min_e),
                 ((lo, min(0, fmt.max_e)) if fmt.max_e >= 0
                  else (lo, fmt.max_e)),
                 (hi, fmt.min_e), (lo + 1, 0 if fmt.max_e >= 0 else fmt.max_e),
                 (hi - 1, fmt.min_e), (lo, fmt.max_e)):
        try:
            out.append(Flonum.finite(0, f, e, fmt))
        except Exception:
            continue
    return out[:n] if len(out) > n else out


# ----------------------------------------------------------------------
# The Fraction oracle for counted (printf-semantics) digit requests.
# ----------------------------------------------------------------------

def _round_fraction(x: Fraction, tie: TieBreak) -> int:
    """``round(x)`` with the given tie strategy (x >= 0)."""
    q, rem = divmod(x.numerator, x.denominator)
    double_rem = 2 * rem
    if double_rem < x.denominator:
        return q
    if double_rem > x.denominator:
        return q + 1
    return tie.choose(q)


def _int_digits(n: int, base: int) -> Tuple[int, ...]:
    if base == 10:
        return tuple(int(c) for c in str(n))
    out = []
    while n:
        n, d = divmod(n, base)
        out.append(d)
    return tuple(reversed(out))


def counted_digits_rational(v: Flonum, position: Optional[int] = None,
                            ndigits: Optional[int] = None, base: int = 10,
                            tie: TieBreak = TieBreak.EVEN
                            ) -> Tuple[int, Tuple[int, ...]]:
    """``(k, digits)`` of the exact value, rounded at a counted position.

    An independent re-statement of the ``printf`` fixed-format contract
    over :class:`fractions.Fraction` — deliberately different plumbing
    from :func:`repro.baselines.naive_fixed.exact_fixed_digits` (which
    works on an integer numerator/denominator pair with its own scaled
    ``ilog``), so the two can serve as oracles for each other and for
    the engine's counted tier.
    """
    value = Fraction(v.f) * Fraction(v.fmt.radix) ** v.e
    B = Fraction(base)
    if position is not None:
        n = _round_fraction(value / B**position, tie)
        if n == 0:
            return position, ()
        digits = _int_digits(n, base)
        return position + len(digits), digits
    # Relative mode: locate k with base**(k-1) <= value < base**k.
    num, den = value.numerator, value.denominator
    k = int((num.bit_length() - den.bit_length())
            * math.log(2) / math.log(base))
    bk = B**k
    while value >= bk:
        bk *= B
        k += 1
    while value < bk / B:
        bk /= B
        k -= 1
    n = _round_fraction(value / B**(k - ndigits), tie)
    if n >= base**ndigits:  # 9.99… carries into a new leading digit
        n //= base
        k += 1
    return k, _int_digits(n, base)


# ----------------------------------------------------------------------
# The battery
# ----------------------------------------------------------------------

def verify_format(fmt: FloatFormat = BINARY64, n: int = 200,
                  seed: int = 0) -> VerificationReport:
    """Cross-validate all engines on ``n`` sampled values of ``fmt``."""
    report = VerificationReport(format_name=fmt.name)
    host_checks = fmt is BINARY64 or fmt == BINARY64
    engine = Engine()  # all tiers enabled; memo exercised across values
    for v in sample_values(fmt, n, seed):
        report.checked += 1
        _check_shortest_engines(v, report)
        _check_shortest_tiers(v, engine, report)
        _check_fixed_engines(v, report)
        _check_fixed_tiers(v, engine, report)
        _check_readers(v, engine, report)
        _check_surfaces(v, report)
        if host_checks:
            _check_host_oracles(v, engine, report)
    return report


def _check_shortest_engines(v: Flonum, report: VerificationReport) -> None:
    spec = shortest_digits_rational(v, mode=ReaderMode.NEAREST_EVEN)
    report.check("free/exact")
    fast = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
    if (spec.k, spec.digits) != (fast.k, fast.digits):
        report.record("free/exact", v, f"{fast} != {spec}")
    report.check("free/exact")
    limbs = shortest_digits_bignat(v, mode=ReaderMode.NEAREST_EVEN)
    if (limbs.k, limbs.digits) != (fast.k, fast.digits):
        report.record("free/exact", v, f"{limbs} != {fast}")
    grisu = grisu_shortest(v)
    if grisu is not None:
        report.check("free/tier1")
        unknown = shortest_digits(v, mode=ReaderMode.NEAREST_UNKNOWN)
        if (grisu.k, grisu.digits) != (unknown.k, unknown.digits):
            report.record("free/tier1", v, f"{grisu} != {unknown}")


def _check_shortest_tiers(v: Flonum, engine: Engine,
                          report: VerificationReport) -> None:
    """The engine's own tiers against the rational spec."""
    spec = shortest_digits_rational(v, mode=ReaderMode.NEAREST_EVEN)
    report.check("free/engine")
    got = engine.shortest_digits(v, fmt=v.fmt)
    if (got.k, got.digits) != (spec.k, spec.digits):
        report.record("free/engine", v, f"{got} != {spec}")
    if v.fmt.radix == 2:
        tables = tables_for(v.fmt, 10)
        t0 = tier0_digits(v.f, v.e, tables.hidden_limit, tables.min_e,
                          tables.mantissa_limit, tables.max_e,
                          ReaderMode.NEAREST_EVEN)
        if t0 is not None:
            report.check("free/tier0")
            acc, _nd, k = t0
            if (k, tuple(int(c) for c in str(acc))) != (spec.k, spec.digits):
                report.record("free/tier0", v, f"{t0} != {spec}")


def _check_fixed_engines(v: Flonum, report: VerificationReport) -> None:
    n = min(12, v.fmt.decimal_digits_to_distinguish())
    report.check("fixed/exact")
    one_shot = exact_fixed_digits(v, ndigits=n)
    loop = fixed_digits_loop(v, n)
    if (one_shot.k, one_shot.digits) != (loop.k, loop.digits):
        report.record("fixed/exact", v, f"{loop} != {one_shot}")
    counted = counted_fixed(v, n)
    if counted is not None:
        report.check("fixed/counted")
        if (counted.k, counted.digits) != (one_shot.k, one_shot.digits):
            report.record("fixed/counted", v, f"{counted} != {one_shot}")
    # The paper's fixed format: integer implementation vs rational spec.
    from repro.core.fixed import fixed_digits
    from repro.core.fixed_rational import fixed_digits_rational

    report.check("fixed/exact")
    ours = fixed_digits(v, ndigits=n)
    spec = fixed_digits_rational(v, ndigits=n)
    if (ours.k, ours.digits, ours.hashes) != (spec.k, spec.digits,
                                              spec.hashes):
        report.record("fixed/exact", v, f"{ours} != {spec}")


def _check_fixed_tiers(v: Flonum, engine: Engine,
                       report: VerificationReport) -> None:
    """The engine's counted/paper fixed routes against both oracles."""
    from repro.core.fixed_rational import fixed_digits_rational

    for nd in _NDIGIT_PROBES:
        report.check("fixed/engine-counted")
        got = engine.counted_digits(v, ndigits=nd, fmt=v.fmt)
        want = exact_fixed_digits(v, ndigits=nd)
        if (got.k, got.digits) != (want.k, want.digits):
            report.record("fixed/engine-counted", v,
                          f"ndigits={nd} {got} != {want}")
    # Absolute probes produce every digit down to the position — skip
    # values whose magnitude would need thousands of them (wide formats
    # near max_e; CPython's int->str conversion also caps there).
    absolute_ok = (v.e * math.log10(v.fmt.radix) < 400)
    for pos in _POSITION_PROBES if absolute_ok else ():
        report.check("fixed/engine-counted")
        got = engine.counted_digits(v, position=pos, fmt=v.fmt)
        want = exact_fixed_digits(v, position=pos)
        if (got.k, got.digits) != (want.k, want.digits):
            report.record("fixed/engine-counted", v,
                          f"position={pos} {got} != {want}")
    # Second, independently constructed oracle (Fraction arithmetic).
    for nd in (3, 13):
        report.check("fixed/counted-rational")
        got = engine.counted_digits(v, ndigits=nd, fmt=v.fmt)
        k, digits = counted_digits_rational(v, ndigits=nd)
        if (got.k, got.digits) != (k, digits):
            report.record("fixed/counted-rational", v,
                          f"ndigits={nd} {got} != ({k}, {digits})")
    # Paper Section 4 semantics through the engine vs the rational spec.
    for nd in (2, 8):
        report.check("fixed/engine-paper")
        got = engine.fixed_digits(v, ndigits=nd, fmt=v.fmt)
        spec = fixed_digits_rational(v, ndigits=nd)
        if (got.k, got.digits, got.hashes, got.position) != (
                spec.k, spec.digits, spec.hashes, spec.position):
            report.record("fixed/engine-paper", v,
                          f"ndigits={nd} {got} != {spec}")
    for pos in (-4, 0) if absolute_ok else ():
        report.check("fixed/engine-paper")
        got = engine.fixed_digits(v, position=pos, fmt=v.fmt)
        spec = fixed_digits_rational(v, position=pos)
        if (got.k, got.digits, got.hashes, got.position) != (
                spec.k, spec.digits, spec.hashes, spec.position):
            report.record("fixed/engine-paper", v,
                          f"position={pos} {got} != {spec}")


def _check_surfaces(v: Flonum, report: VerificationReport) -> None:
    """String surfaces: scheme, hex (radix-2 only), truncated reader."""
    from repro.compat.scheme import number_to_string, string_to_number
    from repro.core.api import format_shortest
    from repro.reader.truncated import read_decimal_truncated

    report.check("surface/roundtrip")
    scheme = string_to_number(number_to_string(v), v.fmt)
    if scheme != v:
        report.record("surface/roundtrip", v, f"scheme {scheme!r}")
    text = format_shortest(v)
    trunc = read_decimal_truncated(text, v.fmt)
    if trunc != v:
        report.record("surface/roundtrip", v, f"truncated {trunc!r}")
    if v.fmt.radix == 2 and v.fmt.has_encoding:
        from repro.format.hexfloat import format_hex, parse_hex

        hexed = parse_hex(format_hex(v), v.fmt)
        if hexed != v:
            report.record("surface/roundtrip", v, "hexfloat")


def _check_readers(v: Flonum, engine: Engine,
                   report: VerificationReport) -> None:
    report.check("reader/roundtrip")
    r = shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)
    frac = r.to_fraction()
    back = read_fraction(frac, v.fmt)
    if back != v:
        report.record("reader/roundtrip", v, f"read back {back!r}")
    ar = algorithm_r(frac.numerator, frac.denominator, v.fmt)
    if ar != v:
        report.record("reader/roundtrip", v, f"algorithm-r {ar!r}")
    # The tiered read engine on the shortest text, with tier attribution.
    text = engine.format(v, fmt=v.fmt)
    got = engine.read_result(text, v.fmt)
    report.check(f"reader/engine-{got.tier}")
    if not _same_datum(got.value, v):
        report.record(f"reader/engine-{got.tier}", v,
                      f"{text!r} -> {got.value!r}")


#: ``printf`` specs the host oracle checks run, chosen to hit both the
#: engine's fast tier (short counted requests) and the exact fallback.
_HOST_SPECS = ("%.17e", "%.6f", "%.12g", "%.2e", "%g")


def _check_host_oracles(v: Flonum, engine: Engine,
                        report: VerificationReport) -> None:
    x = v.to_float()
    report.check("free/host")
    if py_repr(x) != repr(x):
        report.record("free/host", v, f"{py_repr(x)} != {repr(x)}")
    if float(py_repr(x)) != x:
        report.record("free/host", v, "host read-back")
    report.check("free/engine-host")
    if float(engine.format(x)) != x:
        report.record("free/engine-host", v, "engine output not read back")
    for spec in _HOST_SPECS:
        report.check("fixed/printf-host")
        if format_printf(spec, x) != spec % x:
            report.record("fixed/printf-host", v,
                          f"{spec}: {format_printf(spec, x)} != {spec % x}")
    # Bellerophon from the repr's parsed parts.
    from repro.reader.parse import parse_decimal

    report.check("reader/bellerophon")
    parsed = parse_decimal(repr(x))
    got = bellerophon(parsed.digits, parsed.exponent).value
    if got != v:
        report.record("reader/bellerophon", v, f"{got!r}")


# ----------------------------------------------------------------------
# The round-trip battery: print↔parse conformance through the engines
# ----------------------------------------------------------------------

def _same_datum(a: Flonum, b: Flonum) -> bool:
    """Bit identity: same kind, sign, significand and exponent.

    ``Flonum.__eq__`` treats ``+0 == -0`` (value semantics); the
    round-trip contract is stricter — signed zeros and the sign of
    infinities must survive.
    """
    if a.is_nan or b.is_nan:
        return a.is_nan and b.is_nan
    if not a.is_finite or not b.is_finite:
        return a.is_finite == b.is_finite and a.sign == b.sign
    return (a.sign, a.f, a.e) == (b.sign, b.f, b.e)


def roundtrip_values(fmt: FloatFormat, n: int, seed: int = 0
                     ) -> List[Flonum]:
    """Deterministic *signed* sample for the round-trip battery.

    Mixes uniform bit patterns with the populations the reader tiers
    find hardest: denormals (including the smallest), exact powers of
    two hugging ``emin``/``emax`` (where the lower rounding gap
    halves), boundary significands, and both signed zeros.
    """
    rng = random.Random(seed)
    lo, hi = fmt.hidden_limit, fmt.mantissa_limit - 1
    out: List[Flonum] = [Flonum.zero(fmt, 0), Flonum.zero(fmt, 1)]
    for f, e in ((1, fmt.min_e), (lo - 1, fmt.min_e), (lo, fmt.min_e),
                 (hi, fmt.max_e), (lo, fmt.max_e), (hi, fmt.min_e)):
        out.append(Flonum.finite(0, f, e, fmt))
        out.append(Flonum.finite(1, f, e, fmt))
    while len(out) < n:
        sign = rng.randrange(2)
        kind = rng.randrange(8)
        if kind == 0:  # denormal
            f, e = rng.randrange(1, lo), fmt.min_e
        elif kind == 1:  # exact power of two near the exponent rails
            f = lo
            e = rng.choice((fmt.min_e, fmt.min_e + 1, fmt.min_e + 2,
                            fmt.max_e, fmt.max_e - 1, fmt.max_e - 2))
        elif kind == 2:  # boundary significands, any exponent
            f = rng.choice((lo, lo + 1, hi - 1, hi))
            e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        else:  # uniform over the normal range
            f = rng.randrange(lo, hi + 1)
            e = rng.randrange(fmt.min_e, fmt.max_e + 1)
        out.append(Flonum.finite(sign, f, e, fmt))
    return out[:n]


def _roundtrip_literals(fmt: FloatFormat, n: int, seed: int) -> List[str]:
    """Random decimal literals for the parse→print→parse leg.

    The exponent span is sized to the format so the sample crosses the
    zero and infinity clamps, the denormal band and the exact-power
    window; significand shapes mix short human-style decimals with
    long (truncating) digit strings.
    """
    rng = random.Random(seed ^ 0x5EED)
    # Decimal orders to just past the format's finite range.
    span = int((abs(fmt.min_e) + fmt.precision) * 0.302) + 30
    lits: List[str] = []
    for _ in range(n):
        sign = "-" if rng.randrange(2) else ""
        kind = rng.randrange(6)
        if kind == 0:  # short integer-significand scientific
            d = rng.randrange(1, 10**rng.randrange(1, 8))
            lits.append(f"{sign}{d}e{rng.randrange(-span, span)}")
        elif kind == 1:  # machine-precision scientific
            d = rng.randrange(1, 10**rng.randrange(15, 22))
            lits.append(f"{sign}{d}e{rng.randrange(-span, span)}")
        elif kind == 2:  # long, truncating significand
            d = rng.randrange(1, 10**rng.randrange(22, 45))
            lits.append(f"{sign}{d}e{rng.randrange(-span, span)}")
        elif kind == 3:  # human-style point literal
            ip = rng.randrange(0, 10**rng.randrange(1, 10))
            fp = rng.randrange(0, 10**rng.randrange(1, 12))
            lits.append(f"{sign}{ip}.{fp}")
        elif kind == 4:  # near the clamp thresholds
            d = rng.randrange(1, 10**rng.randrange(1, 20))
            edge = rng.choice((span - 3, span - 2, span - 1, span))
            q = edge if rng.randrange(2) else -edge
            lits.append(f"{sign}{d}e{q}")
        else:  # exact-power-window candidates (tier-0 shapes)
            d = rng.randrange(1, fmt.mantissa_limit)
            lits.append(f"{sign}{d}e{rng.randrange(-25, 40)}")
    return lits


def verify_roundtrip(fmt: FloatFormat = BINARY64, n: int = 50000,
                     seed: int = 0,
                     engine: Optional[Engine] = None) -> VerificationReport:
    """The paper's information-preservation contract, both directions.

    Leg A (``n`` flonums): ``print → parse → print``.  The shortest
    output of each sampled value must read back bit-identically through
    the tiered read engine (checks tagged per resolving tier, so a
    regression localizes), and re-printing the parsed value must
    reproduce the text byte for byte.  For binary64 the host's
    ``float()`` serves as an independent read oracle on the same text.

    Leg B (``n`` literals): ``parse → print → parse``.  An arbitrary
    literal reads to some flonum; printing that flonum and reading the
    output must land on the same bits (tagged by the *first* parse's
    tier).  The host oracle applies on binary64 again, this time on the
    arbitrary literal — exercising the interval and exact tiers against
    an implementation that shares no code with this package.
    """
    report = VerificationReport(format_name=f"{fmt.name} round-trip")
    eng = engine if engine is not None else Engine()
    host = fmt is BINARY64 or fmt == BINARY64
    for v in roundtrip_values(fmt, n, seed):
        report.checked += 1
        text = eng.format(v, fmt=fmt)
        got = eng.read_result(text, fmt)
        report.check(f"print-parse/{got.tier}")
        if not _same_datum(got.value, v):
            report.record(f"print-parse/{got.tier}", v,
                          f"{text!r} -> {got.value!r}")
            continue
        report.check("print-parse-print")
        again = eng.format(got.value, fmt=fmt)
        if again != text:
            report.record("print-parse-print", v,
                          f"{text!r} reprints as {again!r}")
        if host:
            report.check("host-float")
            if not _same_datum(Flonum.from_float(float(text)), v):
                report.record("host-float", v,
                              f"host reads {text!r} as {float(text)!r}")
    for lit in _roundtrip_literals(fmt, n, seed):
        report.checked += 1
        first = eng.read_result(lit, fmt)
        text = eng.format(first.value, fmt=fmt)
        second = eng.read_result(text, fmt)
        report.check(f"parse-print-parse/{first.tier}")
        if not _same_datum(first.value, second.value):
            report.record(f"parse-print-parse/{first.tier}", first.value,
                          f"{lit!r} -> {text!r} -> {second.value!r}")
        if host:
            report.check("host-float")
            if not _same_datum(Flonum.from_float(float(lit)), first.value):
                report.record("host-float", first.value,
                              f"host reads {lit!r} as {float(lit)!r}")
    return report


# ----------------------------------------------------------------------
# The contenders battery: the never-bail lanes, certified differentially
# ----------------------------------------------------------------------

def verify_contenders(fmt: FloatFormat = BINARY64, n: int = 50000,
                      seed: int = 0) -> VerificationReport:
    """Certify the contender lanes against the exact algorithms.

    Writer leg: a schubfach-only engine (``tier_order=("schubfach",)``)
    must be byte-identical to an exact-only engine over ``n`` sampled
    values plus the denormal/boundary/decimal-tie/torture corpora, and
    must never consult the exact tier — the lane has no bail path, so
    ``tier2_calls`` must stay 0 and the lane must account for every
    conversion.

    Reader leg: a lemire-only read engine must read ``n`` in-range
    literals of at most ``decimal_digits_to_distinguish()`` significant
    digits (17/9/5 for binary64/32/16) bit-identically to
    :func:`repro.reader.exact.read_decimal`, with zero exact-rational
    consultations (``read_tier2_calls == 0``) and the lane firing on
    every literal.
    """
    report = VerificationReport(format_name=f"{fmt.name} contenders")
    exact = Engine(tier_order=(), cache_size=0)
    schub = Engine(tier_order=("schubfach",), cache_size=0)
    values = sample_values(fmt, n, seed)
    values += (denormals(fmt) + power_boundaries(fmt)
               + decimal_ties(fmt) + torture_floats(fmt))
    for v in values:
        report.checked += 1
        report.check("schubfach/shortest")
        want = exact.format(v, fmt=fmt)
        got = schub.format(v, fmt=fmt)
        if got != want:
            report.record("schubfach/shortest", v,
                          f"{got!r} != exact {want!r}")
    stats = schub.stats()
    report.check("schubfach/no-bail")
    if stats["tier2_calls"]:
        report.record("schubfach/no-bail", values[0],
                      f"{stats['tier2_calls']} exact-tier consultations")
    report.check("schubfach/coverage")
    if stats["schubfach_hits"] != stats["conversions"]:
        report.record("schubfach/coverage", values[0],
                      f"lane resolved {stats['schubfach_hits']} of "
                      f"{stats['conversions']} conversions")

    lem = ReadEngine(tier_order=("lemire",), cache_size=0)
    tables = tables_for(fmt, 10)
    max_d = fmt.decimal_digits_to_distinguish()
    rng = random.Random(seed ^ 0x1E51)
    # Decimal magnitude ``mag = q + digits`` must stay inside
    # ``(read_zero_exp10, read_inf_exp10]``: outside it the engine's
    # clamp prologue resolves ahead of any lane, which would dilute the
    # no-fallback claim.  Inside it the lane sees everything from deep
    # denormals to near-overflow values.
    mag_lo = tables.read_zero_exp10 + 1
    mag_hi = tables.read_inf_exp10
    for _ in range(n):
        nd = rng.randrange(1, max_d + 1)
        d = rng.randrange(10 ** (nd - 1), 10 ** nd)
        lit = f"{d}e{rng.randrange(mag_lo, mag_hi + 1) - nd}"
        report.checked += 1
        report.check("lemire/read")
        want_v = read_decimal(lit, fmt, ReaderMode.NEAREST_EVEN)
        got_v = lem.read(lit, fmt)
        if got_v != want_v:
            report.record("lemire/read", want_v, f"{lit!r} -> {got_v!r}")
    rstats = lem.stats()
    report.check("lemire/no-fallback")
    if rstats["read_tier2_calls"]:
        report.record("lemire/no-fallback", values[0],
                      f"{rstats['read_tier2_calls']} exact-tier reads")
    report.check("lemire/coverage")
    if rstats["read_lemire_hits"] != n:
        report.record("lemire/coverage", values[0],
                      f"lane resolved {rstats['read_lemire_hits']} of "
                      f"{n} literals")
    return report


# ----------------------------------------------------------------------
# The bulk battery: the serving layer against the scalar engine
# ----------------------------------------------------------------------

def _compare_rows(report: VerificationReport, tag: str, got, want,
                  values) -> None:
    """Tag one whole-column comparison; report the first divergence."""
    report.check(tag)
    if got == want:
        return
    if len(got) != len(want):
        report.record(tag, values[0],
                      f"row count {len(got)} != {len(want)}")
        return
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            report.record(tag, values[i], f"row {i}: {g!r} != {w!r}")
            return


def verify_bulk(fmt: FloatFormat = BINARY64, n: int = 50000, seed: int = 0,
                jobs: int = 2) -> VerificationReport:
    """Byte-identity of the bulk serving layer against the scalar engine.

    The bulk layer (:mod:`repro.serve`) reorders work — columnar
    ingestion, dedup interning, shard split/merge — but must never
    change a single output byte.  This battery formats the signed
    round-trip sample (:func:`roundtrip_values` plus NaN and both
    infinities) once through the scalar :meth:`Engine.format` path as
    the oracle, then checks every bulk route against it:

    * :func:`repro.serve.format_column` with interning on and off, fed
      bit patterns *and* the packed byte column (the zero-copy path);
    * :func:`repro.serve.format_bulk` payload bytes against the joined
      scalar rows (the :class:`~repro.serve.DelimitedWriter` leg);
    * a process :class:`~repro.serve.BulkPool` (``jobs`` workers) on
      the same packed column — shard split, per-worker engines and
      order-preserving merge;
    * :func:`repro.serve.read_bulk` of the payload against the scalar
      :meth:`ReadEngine.read_many` bits (and, transitively, the
      original bits — the sample round-trips by construction).
    """
    from repro.serve import (BulkPool, format_bulk, format_column,
                             pack_bits, read_bulk)

    report = VerificationReport(format_name=f"{fmt.name} bulk")
    eng = Engine()
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    bits = [v.to_bits() for v in values]
    packed = pack_bits(bits, fmt)
    scalar = [eng.format(v, fmt=fmt) for v in values]

    _compare_rows(report, "bulk/column-dedup",
                  format_column(bits, fmt, engine=eng), scalar, values)
    _compare_rows(report, "bulk/column-nodedup",
                  format_column(bits, fmt, engine=eng, dedup=False),
                  scalar, values)
    _compare_rows(report, "bulk/column-packed",
                  format_column(packed, fmt, engine=eng), scalar, values)

    payload = format_bulk(bits, fmt, engine=eng)
    want_payload = ("\n".join(scalar) + "\n").encode("ascii")
    report.check("bulk/writer")
    if payload != want_payload:
        report.record("bulk/writer", values[0],
                      f"payload differs ({len(payload)} vs "
                      f"{len(want_payload)} bytes)")

    with BulkPool(jobs=jobs, fmt=fmt) as pool:
        pool_payload = pool.format_bulk(packed)
        report.check("bulk/pool-format")
        if pool_payload != want_payload:
            report.record("bulk/pool-format", values[0],
                          f"pool payload differs ({len(pool_payload)} vs "
                          f"{len(want_payload)} bytes)")
        _compare_rows(report, "bulk/pool-read",
                      pool.read_bulk(payload), bits, values)

    want_bits = [v.to_bits() for v in eng.read_many(scalar, fmt)]
    _compare_rows(report, "bulk/read",
                  read_bulk(payload, fmt, engine=eng), want_bits, values)
    _compare_rows(report, "bulk/read-roundtrip", want_bits, bits, values)
    return report


# ----------------------------------------------------------------------
# The warm battery: snapshot-warmed pools against cold ones
# ----------------------------------------------------------------------

def verify_warm(fmt: FloatFormat = BINARY64, n: int = 50000, seed: int = 0,
                jobs: int = 2) -> VerificationReport:
    """Byte-identity of the warm-start fabric against cold execution.

    A snapshot (tables + memo + hot dictionary) may only skip work —
    it must never change a single output byte, and a rejected snapshot
    must degrade to a cold start, counted, never served.  Legs:

    * **warm engine** — ``Engine(snapshot=...)`` output against a cold
      engine's over the signed round-trip sample plus specials, with a
      clean restore (``snapshot_faults == 0``);
    * **warm pool** — a ``jobs``-worker process :class:`BulkPool` warmed
      from the snapshot *file* (container decode, shared-memory hot
      plane, worker re-load all on the path) against the cold pool's
      payload, format and read directions;
    * **corrupt fallback** — the same pool pointed at a bit-flipped
      copy of the file: output still byte-identical, and the rejection
      visible as ``snapshot_faults >= 1`` in :meth:`BulkPool.stats`.
    """
    import collections
    import tempfile

    from repro.engine.snapshot import (build_snapshot, hot_entries,
                                       save_snapshot)
    from repro.serve import BulkPool, pack_bits

    report = VerificationReport(format_name=f"{fmt.name} warm")
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    packed = pack_bits([v.to_bits() for v in values], fmt)

    # The donor plays the sample, the head of its frequency
    # distribution becomes the hot dictionary (tools/warm_snapshot.py's
    # recipe, inlined so the battery is self-contained).
    donor = Engine()
    scalar = [donor.format(v, fmt=fmt) for v in values]
    head = [v for v, _ in collections.Counter(
        v for v in values if v.is_finite and not v.is_zero
    ).most_common(512)]
    snap = build_snapshot([fmt.name], engine=donor,
                          hot=hot_entries(head, engine=donor))

    # Warm engine vs cold scalar rows.
    warm_eng = Engine(snapshot=snap)
    _compare_rows(report, "warm/engine",
                  [warm_eng.format(v, fmt=fmt) for v in values],
                  scalar, values)
    report.check("warm/engine-clean-restore")
    if warm_eng.stats()["snapshot_faults"]:
        report.record("warm/engine-clean-restore", values[0],
                      "the battery's own snapshot was rejected")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "warm.snap")
        save_snapshot(snap, path)
        with BulkPool(jobs=jobs, fmt=fmt) as cold:
            want_payload = cold.format_bulk(packed)
        with BulkPool(jobs=jobs, fmt=fmt, snapshot=path) as warm:
            got_payload = warm.format_bulk(packed)
            report.check("warm/pool-format")
            if got_payload != want_payload:
                report.record("warm/pool-format", values[0],
                              f"payload differs ({len(got_payload)} vs "
                              f"{len(want_payload)} bytes)")
            _compare_rows(report, "warm/pool-read",
                          warm.read_bulk(want_payload),
                          [v.to_bits() for v in
                           donor.read_many(scalar, fmt)], values)
            stats = warm.stats()
            report.check("warm/pool-clean-restore")
            if stats["snapshot_faults"]:
                report.record("warm/pool-clean-restore", values[0],
                              f"{stats['snapshot_faults']} snapshot "
                              f"faults on a valid file")

        # Corrupt fallback: flip one payload byte mid-file.  The pool
        # must serve identical bytes cold and count the rejection.
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[len(blob) // 2] ^= 0x40
        bad = os.path.join(tmp, "corrupt.snap")
        with open(bad, "wb") as fh:
            fh.write(bytes(blob))
        with BulkPool(jobs=jobs, fmt=fmt, snapshot=bad) as pool:
            got_payload = pool.format_bulk(packed)
            report.check("warm/corrupt-fallback")
            if got_payload != want_payload:
                report.record("warm/corrupt-fallback", values[0],
                              "corrupt snapshot changed output bytes")
            report.check("warm/corrupt-counted")
            if not pool.stats()["snapshot_faults"]:
                report.record("warm/corrupt-counted", values[0],
                              "corrupt snapshot was not counted")
    return report


# ----------------------------------------------------------------------
# The buffer battery: the byte-plane pipeline against the scalar engines
# ----------------------------------------------------------------------

def verify_buffer(fmt: FloatFormat = BINARY64, n: int = 50000,
                  seed: int = 0) -> VerificationReport:
    """Byte/bit-identity of the byte-plane pipeline
    (:mod:`repro.engine.buffer`) against the scalar engines.

    The pipeline never materializes per-row strings — tokens stay
    ``bytes``, classification is one vectorized sweep, conversions run
    in per-tier sub-batches — but must reproduce the scalar results
    exactly.  Oracles and legs:

    * **emit** — :func:`~repro.engine.buffer.format_buffer` on the
      packed column (and the bit list, with dedup off, into a prepared
      :class:`~repro.serve.DelimitedWriter`, and with a CRLF delimiter)
      against the joined scalar :meth:`Engine.format` rows;
    * **parse** — :func:`~repro.engine.buffer.parse_buffer` of the
      payload against a memo-free scalar
      :meth:`ReadEngine.read_result` per row, with *per-tier mismatch
      attribution*: each row's check is tagged by the tier the scalar
      reader resolved it with (``buffer/parse/tier0`` …), so a
      divergence localizes to the sub-batch that produced it;
    * **split** — :func:`~repro.engine.buffer.split_plane` /
      :func:`~repro.engine.buffer.split_rows` edge cases: trailing
      terminator, unterminated trailing token, CRLF and multi-byte
      delimiters, empty plane, non-bytes input.

    The sample is the signed round-trip population
    (:func:`roundtrip_values`: denormals, rail-hugging powers, both
    zeros) plus NaN and both infinities.
    """
    from repro.engine.buffer import (format_buffer, parse_buffer,
                                     split_plane, split_rows)
    from repro.engine.reader import ReadEngine
    from repro.errors import DecodeError
    from repro.serve import DelimitedWriter, pack_bits

    report = VerificationReport(format_name=f"{fmt.name} buffer")
    eng = Engine()
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    bits = [v.to_bits() for v in values]
    packed = pack_bits(bits, fmt)
    scalar = [eng.format(v, fmt=fmt) for v in values]
    want_payload = ("\n".join(scalar) + "\n").encode("ascii")

    # --- emit legs -----------------------------------------------------
    for tag, got in (
            ("buffer/format-packed",
             format_buffer(packed, fmt, engine=eng)),
            ("buffer/format-bits",
             format_buffer(bits, fmt, engine=eng)),
            ("buffer/format-nodedup",
             format_buffer(packed, fmt, engine=eng, dedup=False)),
            ("buffer/format-writer",
             format_buffer(packed, fmt, engine=eng,
                           writer=DelimitedWriter(b"\n")))):
        report.check(tag)
        if got != want_payload:
            report.record(tag, values[0],
                          f"payload differs ({len(got)} vs "
                          f"{len(want_payload)} bytes)")
    report.check("buffer/format-crlf")
    got = format_buffer(packed, fmt, engine=eng, delimiter=b"\r\n")
    if got != ("\r\n".join(scalar) + "\r\n").encode("ascii"):
        report.record("buffer/format-crlf", values[0], "payload differs")

    # --- parse legs, tier-attributed -----------------------------------
    oracle = ReadEngine(cache_size=0)  # memo off: true tier per row
    results = [oracle.read_result(t, fmt) for t in scalar]
    want_bits = [r.value.to_bits() for r in results]
    got_bits = parse_buffer(want_payload, fmt)
    if len(got_bits) != len(want_bits):
        report.check("buffer/parse")
        report.record("buffer/parse", values[0],
                      f"row count {len(got_bits)} != {len(want_bits)}")
    else:
        for i, (g, w, r) in enumerate(zip(got_bits, want_bits, results)):
            tag = f"buffer/parse/{r.tier}"
            report.check(tag)
            if g != w:
                report.record(tag, values[i],
                              f"row {i} ({scalar[i]!r}): "
                              f"{g:#x} != {w:#x}")
    _compare_rows(report, "buffer/parse-nodedup",
                  parse_buffer(want_payload, fmt, dedup=False),
                  want_bits, values)
    _compare_rows(report, "buffer/parse-flonums",
                  [v.to_bits() for v in parse_buffer(want_payload, fmt,
                                                     out="flonums")],
                  want_bits, values)
    crlf = ("\r\n".join(scalar) + "\r\n").encode("ascii")
    _compare_rows(report, "buffer/parse-crlf",
                  parse_buffer(crlf, fmt, delimiter=b"\r\n"),
                  want_bits, values)
    _compare_rows(report, "buffer/parse-roundtrip", want_bits, bits,
                  values)

    # --- splitter edge cases -------------------------------------------
    report.check("buffer/split")
    head = scalar[:3]
    cases = []
    for delim in ("\n", "\r\n", "||"):
        body = delim.join(head)
        cases.append((body + delim, delim, head))       # terminated
        cases.append((body, delim, head))               # unterminated tail
    cases.append(("", "\n", []))                        # empty plane
    for text, delim, want_rows in cases:
        plane, starts, lengths = split_plane(text.encode("ascii"), delim)
        rows = [plane[s:s + w].decode("ascii")
                for s, w in zip(starts, lengths)]
        if rows != want_rows or split_rows(text, delim) != want_rows:
            report.record("buffer/split", values[0],
                          f"{text!r} split on {delim!r}: {rows!r}")
    try:
        split_rows(object())
        report.record("buffer/split", values[0],
                      "non-bytes input did not raise DecodeError")
    except DecodeError:
        pass
    except Exception as exc:
        report.record("buffer/split", values[0],
                      f"non-bytes input raised {exc!r}, not DecodeError")
    return report


# ----------------------------------------------------------------------
# The chaos battery: bulk byte-identity under injected faults
# ----------------------------------------------------------------------

def _chaos_plans(seed: int):
    """The named fault plans the chaos battery replays, one fresh
    :class:`~repro.faults.FaultPlan` per call (plans are stateful)."""
    from repro.faults import FaultPlan, FaultSpec, smoke_plan

    yield "crash", FaultPlan([
        FaultSpec("pool.format_shard", "crash", shard=1),
        FaultSpec("pool.read_shard", "crash", shard=2),
    ], seed), {}
    yield "stall", FaultPlan([
        FaultSpec("pool.format_shard", "stall", shard=0, stall=0.8),
        FaultSpec("pool.read_shard", "stall", shard=1, stall=0.8),
    ], seed), {"deadline": 0.3}
    yield "corrupt", FaultPlan([
        FaultSpec("pool.format_shard", "corrupt", shard=2),
        FaultSpec("pool.read_shard", "corrupt", shard=0),
    ], seed), {}
    yield "tier-raise", FaultPlan([
        FaultSpec("engine.tier0", rate=0.01, limit=64),
        FaultSpec("engine.tier1", rate=0.02, limit=64),
        FaultSpec("reader.tier0", rate=0.01, limit=64),
        FaultSpec("reader.tier1", rate=0.02, limit=64),
    ], seed), {}
    yield "mixed", smoke_plan(seed), {}


def verify_chaos(fmt: FloatFormat = BINARY64, n: int = 50000, seed: int = 0,
                 jobs: int = 2) -> VerificationReport:
    """The bulk byte-identity battery replayed under injected faults.

    For each named fault plan (worker crash, shard stall past its
    deadline, payload corruption in transit, fast tiers raising
    mid-certification, and a mixed plan), format and re-read the signed
    round-trip sample through a process :class:`~repro.serve.BulkPool`
    with the plan armed, and enforce the three fault-tolerance
    contracts:

    * **byte identity** — both directions must match the fault-free
      scalar oracle exactly; a fault may cost retries, never a byte;
    * **accounting** — every injected fault is visible afterwards:
      parent-side pool faults in the recovery counters
      (``shard_failures``/``deadline_hits``/``corrupt_shards``),
      in-worker tier faults in the merged ``tier_faults`` /
      ``read_tier_faults`` engine counters;
    * **typed errors only** — when a failure is made unrecoverable
      (persistent faults under ``on_error="raise"``, an exhausted
      ``budget``, a strict engine), what escapes is the documented
      :class:`~repro.errors.ReproError` subclass and nothing else.
    """
    from repro import faults
    from repro.errors import (DeadlineExceededError, ReproError,
                              ShardError)
    from repro.serve import BulkPool, pack_bits

    report = VerificationReport(format_name=f"{fmt.name} chaos")
    eng = Engine()
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    bits = [v.to_bits() for v in values]
    packed = pack_bits(bits, fmt)
    scalar = [eng.format(v, fmt=fmt) for v in values]
    want_payload = ("\n".join(scalar) + "\n").encode("ascii")
    want_bits = [v.to_bits() for v in eng.read_many(scalar, fmt)]

    for name, plan, pool_kw in _chaos_plans(seed):
        tag = f"chaos/{name}"
        stats = None
        try:
            with BulkPool(jobs=jobs, fmt=fmt, **pool_kw) as pool:
                with faults.armed(plan):
                    got_payload = pool.format_bulk(packed)
                    got_bits = pool.read_bulk(want_payload)
                stats = pool.stats()
        except ReproError as exc:
            report.check(tag)
            report.record(tag, values[0], f"did not heal: {exc!r}")
            continue
        except Exception as exc:  # the cardinal sin: an untyped escape
            report.check(tag)
            report.record(tag, values[0],
                          f"non-ReproError escaped: {exc!r}")
            continue
        report.check(tag)
        if got_payload != want_payload:
            report.record(tag, values[0],
                          f"format payload differs ({len(got_payload)} "
                          f"vs {len(want_payload)} bytes)")
        _compare_rows(report, f"{tag}-read", got_bits, want_bits, values)
        # Accounting: every injected fault is visible somewhere.
        report.check("chaos/accounting")
        with plan._lock:
            pool_fired = sum(plan.fired.get(s, 0) for s in faults.POOL_SITES)
        recovered = (stats["shard_failures"] + stats["corrupt_shards"]
                     + stats["deadline_hits"])
        healed = (stats.get("tier_faults", 0)
                  + stats.get("read_tier_faults", 0))
        if pool_fired and recovered < pool_fired:
            report.record("chaos/accounting", values[0],
                          f"{name}: {pool_fired} pool faults fired but "
                          f"only {recovered} recoveries counted")
        if pool_fired == 0 and healed == 0:
            report.record("chaos/accounting", values[0],
                          f"{name}: plan never fired (dead chaos leg)")

    # Unrecoverable failures surface as the documented typed errors.
    report.check("chaos/typed-shard-error")
    plan = faults.FaultPlan([faults.FaultSpec(
        "pool.format_shard", "raise", shard=0, attempt=None, limit=None)],
        seed)
    try:
        with BulkPool(jobs=jobs, fmt=fmt, kind="thread", on_error="raise",
                      retries=1) as pool:
            with faults.armed(plan):
                pool.format_bulk(packed)
        report.record("chaos/typed-shard-error", values[0],
                      "persistent shard fault did not raise")
    except ShardError as exc:
        if exc.shard != 0 or exc.attempts < 2:
            report.record("chaos/typed-shard-error", values[0],
                          f"bad attribution: shard={exc.shard} "
                          f"attempts={exc.attempts}")
    except Exception as exc:
        report.record("chaos/typed-shard-error", values[0],
                      f"wrong error type: {exc!r}")

    report.check("chaos/typed-deadline")
    plan = faults.FaultPlan([faults.FaultSpec(
        "pool.format_shard", "stall", attempt=None, stall=0.4,
        limit=None)], seed)
    try:
        with BulkPool(jobs=jobs, fmt=fmt, budget=0.5) as pool:
            with faults.armed(plan):
                pool.format_bulk(packed)
        report.record("chaos/typed-deadline", values[0],
                      "exhausted budget did not raise")
    except DeadlineExceededError:
        pass
    except Exception as exc:
        report.record("chaos/typed-deadline", values[0],
                      f"wrong error type: {exc!r}")

    # Strict mode re-raises the injected fault instead of healing.
    report.check("chaos/strict")
    strict_eng = Engine(strict=True)
    plan = faults.FaultPlan([
        faults.FaultSpec("engine.tier0", at=(0,)),
        faults.FaultSpec("engine.tier1", at=(0,)),
    ], seed)
    raised = False
    try:
        with faults.armed(plan):
            for v in values[:64]:
                if v.is_finite and not v.is_zero:
                    strict_eng.format(v, fmt=fmt)
    except faults.InjectedFault:
        raised = True
    except Exception as exc:
        report.record("chaos/strict", values[0],
                      f"strict engine raised {exc!r} instead of the "
                      f"injected fault")
        raised = True
    if not raised:
        report.record("chaos/strict", values[0],
                      "strict engine healed an injected fault")
    return report


# ----------------------------------------------------------------------
# The serve battery: the wire against the scalar engine
# ----------------------------------------------------------------------

def verify_serve(fmt: FloatFormat = BINARY64, n: int = 50000,
                 seed: int = 0, jobs: int = 2) -> VerificationReport:
    """Byte-identity of the serving daemon's wire against the scalar
    engine — the source paper's guarantee re-proven at the protocol
    boundary.

    Boots one loopback :class:`~repro.serve.daemon.ReproDaemon` and
    drives the signed round-trip sample (plus NaN and both infinities)
    through it in ~2048-row requests:

    * **serve/format** — packed bit patterns over the wire; every
      response plane must equal the scalar :meth:`Engine.format` rows
      joined with the delimiter, byte for byte;
    * **serve/read** — the scalar plane back over the wire; every
      response must equal the packed scalar
      :meth:`ReadEngine.read_many` bits;
    * **serve/pipeline** — a pre-encoded burst of mixed format/read
      frames on one connection; responses must come back in FIFO
      request order with the same byte identity (this is the leg that
      exercises micro-batch coalescing and split-back);
    * **serve/errors** — a garbage literal, a misaligned format
      payload and an unknown format name must each come back as the
      documented typed :class:`~repro.errors.ReproError` response with
      the connection still serving afterwards.
    """
    from repro.errors import (DecodeError, ParseError, ProtocolError,
                              ReproError)
    from repro.serve import pack_bits, protocol, serving
    from repro.serve.client import ServeClient

    report = VerificationReport(format_name=f"{fmt.name} serve")
    eng = Engine()
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    bits = [v.to_bits() for v in values]
    packed = pack_bits(bits, fmt)
    itemsize = len(packed) // len(bits)
    scalar = [eng.format(v, fmt=fmt) for v in values]
    want_bits = [v.to_bits() for v in eng.read_many(scalar, fmt)]

    chunk = 2048
    spans = [(a, min(a + chunk, len(values)))
             for a in range(0, len(values), chunk)]

    def plane_of(a: int, b: int) -> bytes:
        return ("\n".join(scalar[a:b]) + "\n").encode("ascii")

    def bits_of(a: int, b: int) -> bytes:
        return pack_bits(want_bits[a:b], fmt)

    with serving(jobs=jobs, kind="thread", batch_window=0.001) as daemon:
        with ServeClient(daemon.host, daemon.port) as client:
            for a, b in spans:
                tag = "serve/format"
                try:
                    got = client.format(packed[a * itemsize:b * itemsize],
                                        fmt.name)
                except ReproError as exc:
                    report.check(tag)
                    report.record(tag, values[a], f"typed error: {exc!r}")
                    continue
                _compare_rows(report, tag, got.split(b"\n")[:-1],
                              plane_of(a, b).split(b"\n")[:-1],
                              values[a:b])
            for a, b in spans:
                tag = "serve/read"
                try:
                    got = client.read(plane_of(a, b), fmt.name)
                except ReproError as exc:
                    report.check(tag)
                    report.record(tag, values[a], f"typed error: {exc!r}")
                    continue
                report.check(tag)
                if got != bits_of(a, b):
                    report.record(tag, values[a],
                                  f"packed bits differ ({len(got)} vs "
                                  f"{len(bits_of(a, b))} bytes)")

            # Pipelined mixed burst: FIFO identity through coalescing.
            burst = spans[:8]
            frames = []
            want = []
            for a, b in burst:
                frames.append(protocol.encode_request(
                    protocol.OP_FORMAT, packed[a * itemsize:b * itemsize],
                    fmt.name, b"\n"))
                want.append(plane_of(a, b))
                frames.append(protocol.encode_request(
                    protocol.OP_READ, plane_of(a, b), fmt.name, b"\n"))
                want.append(bits_of(a, b))
            try:
                responses = client.pipeline(frames)
            except ReproError as exc:
                report.check("serve/pipeline")
                report.record("serve/pipeline", values[0],
                              f"burst failed: {exc!r}")
            else:
                for i, ((status, payload), w) in enumerate(
                        zip(responses, want)):
                    report.check("serve/pipeline")
                    if status != protocol.STATUS_OK or payload != w:
                        report.record("serve/pipeline", values[0],
                                      f"response {i}: status={status}, "
                                      f"{len(payload)} vs {len(w)} bytes")

        # Typed-error legs on a fresh connection; it must keep serving.
        with ServeClient(daemon.host, daemon.port) as client:
            for tag, call, wanted in (
                ("serve/errors-parse",
                 lambda: client.read(b"1.5\nnot a number\n", fmt.name),
                 ParseError),
                ("serve/errors-align",
                 lambda: client.format(b"\x00" * (itemsize + 1), fmt.name),
                 DecodeError),
                ("serve/errors-format",
                 lambda: client.send_raw(protocol.encode_request(
                     protocol.OP_FORMAT, b"", "bogus!", b"\n"))
                 or client._response(),
                 ProtocolError),
            ):
                report.check(tag)
                try:
                    call()
                    report.record(tag, values[0], "no error response")
                except wanted:
                    pass
                except Exception as exc:
                    report.record(tag, values[0],
                                  f"wrong error type: {exc!r}")
            report.check("serve/errors-alive")
            try:
                if client.format(packed[:8 * itemsize], fmt.name) \
                        != plane_of(0, 8):
                    report.record("serve/errors-alive", values[0],
                                  "post-error response differs")
            except Exception as exc:
                report.record("serve/errors-alive", values[0],
                              f"connection died after typed errors: "
                              f"{exc!r}")
    return report


# ----------------------------------------------------------------------
# The control battery: the self-healing control plane under fire
# ----------------------------------------------------------------------

def verify_control(fmt: FloatFormat = BINARY64, n: int = 50000,
                   seed: int = 0, jobs: int = 2) -> VerificationReport:
    """The self-healing control plane replayed under the chaos plans.

    The contract mirrors the chaos battery's, lifted to the daemon with
    breakers, adaptive admission and the traffic observer armed: the
    control plane may *shed* or *reroute*, never change a byte.

    * **control/breaker** — the circuit-breaker state machine on a fake
      clock: trip after the threshold, shed while open, a single canary
      in half-open (concurrent arrivals shed, not queued), close on
      canary success with backoff reset, re-open on canary failure with
      the full doubled backoff;
    * **control/daemon-breaker** — the same machine on the wire: a
      persistently broken pool trips the breaker after exactly
      ``threshold`` typed failures, subsequent requests shed as
      :class:`ServeOverloadError` without touching the pool, and after
      the (fake-clock) backoff one canary heals the key with
      byte-identical responses;
    * **control/chaos** — the crash/stall/corrupt plans replayed
      through a controlled daemon: byte identity against the scalar
      oracle, a bounded shed rate, and no breaker transitions when the
      pool heals underneath (faults that recover must not trip);
    * **control/admission** — the AIMD controller: p99 above target
      halves the window down to its floor, p99 below grows it back to
      the ceiling, and the daemon's static caps stay hard ceilings;
    * **control/hedge** — the dedicated hedge leg: with hedging opted
      in under an armed stall plan, the straggling shard's duplicate
      wins, ``hedges``/``hedge_wins`` account for it, and the plane is
      byte-identical;
    * **control/rotation** — live snapshot rotation: traffic triggers
      an atomic rebuild from observed hot keys, the rotation is
      counted, responses before and after are byte-identical, and an
      engine warmed from the rotated snapshot matches a cold engine
      byte for byte;
    * **control/health** — the ``HEALTH`` opcode returns breaker
      states, the controller window and the observer summary over the
      wire while regular traffic is being shed.
    """
    import os
    import tempfile
    import time as _time

    from repro import faults
    from repro.errors import ReproError, ServeOverloadError, ShardError
    from repro.serve import pack_bits, serving
    from repro.serve.client import ServeClient
    from repro.serve.control import (AdmissionController, CircuitBreaker,
                                     ADMIT, CANARY, SHED)
    from repro.serve.pool import BulkPool

    report = VerificationReport(format_name=f"{fmt.name} control")
    eng = Engine()
    values = roundtrip_values(fmt, n, seed)
    values.append(Flonum.nan(fmt))
    values.append(Flonum.infinity(fmt, 0))
    values.append(Flonum.infinity(fmt, 1))
    report.checked = len(values)
    bits = [v.to_bits() for v in values]
    packed = pack_bits(bits, fmt)
    itemsize = len(packed) // len(bits)
    scalar = [eng.format(v, fmt=fmt) for v in values]

    chunk = 2048
    spans = [(a, min(a + chunk, len(values)))
             for a in range(0, len(values), chunk)]

    def plane_of(a: int, b: int) -> bytes:
        return ("\n".join(scalar[a:b]) + "\n").encode("ascii")

    # -- control/breaker: the state machine on a fake clock ----------
    tag = "control/breaker"
    now = [0.0]
    brk = CircuitBreaker(threshold=3, reset_timeout=1.0,
                         clock=lambda: now[0])
    report.check(tag)
    trace = []
    for _ in range(3):
        trace.append(brk.admit() == ADMIT)
        brk.record(False)
    trace.append(brk.state == "open")
    trace.append(brk.admit() == SHED)          # open: shed immediately
    now[0] = 0.5
    trace.append(brk.admit() == SHED)          # still inside the backoff
    now[0] = 1.0
    trace.append(brk.admit() == CANARY)        # half-open: one probe
    trace.append(brk.admit() == SHED)          # concurrent: shed, not queued
    brk.record(False, canary=True)             # canary fails
    trace.append(brk.state == "open")          # re-opened...
    now[0] = 2.0                               # ...with the FULL doubled
    trace.append(brk.admit() == SHED)          # backoff (2s), not 1s
    now[0] = 3.0
    trace.append(brk.admit() == CANARY)
    brk.record(True, canary=True)              # canary heals
    trace.append(brk.state == "closed")
    trace.append(brk.admit() == ADMIT)
    snap = brk.snapshot()
    trace.append(snap["trips"] == 1 and snap["reopens"] == 1
                 and snap["closes"] == 1 and snap["canaries"] == 2
                 and snap["reset_timeout"] == 1.0)  # backoff reset
    if not all(trace):
        report.record(tag, values[0],
                      f"state-machine trace failed: {trace}")

    # -- control/admission: AIMD window against the SLO target -------
    tag = "control/admission"
    report.check(tag)
    ctl = AdmissionController(target_p99_ms=10.0, ceiling_bytes=1 << 20,
                              floor_bytes=1 << 16, step_bytes=1 << 18,
                              window=64, adjust_every=16)
    for _ in range(16 * 8):
        ctl.observe(0.050)                     # 50ms >> 10ms target
    shrunk = ctl.limit_bytes
    for _ in range(16 * 16):
        ctl.observe(0.001)                     # 1ms << target
    grown = ctl.limit_bytes
    if not (shrunk == ctl.floor_bytes and grown == ctl.ceiling_bytes
            and ctl.decreases >= 1 and ctl.increases >= 1):
        report.record(tag, values[0],
                      f"AIMD window wrong: shrunk={shrunk} grown={grown} "
                      f"(floor={ctl.floor_bytes} "
                      f"ceiling={ctl.ceiling_bytes}, "
                      f"-{ctl.decreases}/+{ctl.increases})")

    # -- control/daemon-breaker: trip, shed, heal on the wire --------
    tag = "control/daemon-breaker"
    plan = faults.FaultPlan([faults.FaultSpec(
        "pool.format_shard", "raise", attempt=None, limit=None)], seed)
    with serving(jobs=1, kind="thread", batch_window=0.0,
                 on_error="raise", retries=0, breaker_threshold=3,
                 breaker_reset=1.0, clock=lambda: now[0]) as daemon:
        with ServeClient(daemon.host, daemon.port) as client:
            span = packed[:64 * itemsize]
            with faults.armed(plan):
                for i in range(3):
                    report.check(tag)
                    try:
                        client.format(span, fmt.name)
                        report.record(tag, values[0],
                                      f"failure {i} did not surface")
                    except ReproError as exc:
                        # ShardError's structured signature degrades to
                        # the base class on the wire; the name travels
                        # in the message.
                        if not (isinstance(exc, ShardError)
                                or "ShardError" in str(exc)):
                            report.record(tag, values[0],
                                          f"failure {i}: wrong type "
                                          f"{exc!r}")
                report.check(tag)
                try:
                    client.format(span, fmt.name)
                    report.record(tag, values[0],
                                  "open breaker admitted a request")
                except ServeOverloadError:
                    pass
                except ReproError as exc:
                    report.record(tag, values[0],
                                  f"open breaker: wrong type {exc!r}")
            # Fault cleared; advance the fake clock past the backoff:
            # the next request is the canary and must heal the key.
            now[0] += 1.5
            report.check(tag)
            try:
                got = client.format(span, fmt.name)
                if got != plane_of(0, 64):
                    report.record(tag, values[0],
                                  "canary response differs from oracle")
            except ReproError as exc:
                report.record(tag, values[0], f"canary failed: {exc!r}")
            stats = daemon.stats()
            report.check(tag)
            if not (stats["breaker_trips"] == 1
                    and stats["breaker_sheds"] >= 1
                    and stats["breaker_canaries"] == 1
                    and stats["breaker_closes"] == 1):
                report.record(tag, values[0],
                              f"unaccounted transitions: "
                              f"trips={stats['breaker_trips']} "
                              f"sheds={stats['breaker_sheds']} "
                              f"canaries={stats['breaker_canaries']} "
                              f"closes={stats['breaker_closes']}")

    # -- control/chaos: the chaos plans through the control plane ----
    for name, plan, pool_kw in _chaos_plans(seed):
        if name in ("tier-raise", "mixed"):
            continue  # in-worker tiers are the chaos battery's beat
        tag = f"control/chaos-{name}"
        with serving(jobs=jobs, kind="process", batch_window=0.0,
                     retries=3, breaker_threshold=5,
                     slo_target_ms=5000.0, observe_stride=1,
                     **pool_kw) as daemon:
            with ServeClient(daemon.host, daemon.port) as client:
                with faults.armed(plan):
                    for a, b in spans[:4]:
                        report.check(tag)
                        try:
                            got = client.format(
                                packed[a * itemsize:b * itemsize],
                                fmt.name)
                        except ReproError as exc:
                            report.record(tag, values[a],
                                          f"did not heal: {exc!r}")
                            continue
                        if got != plane_of(a, b):
                            report.record(tag, values[a],
                                          "plane differs under chaos")
                stats = daemon.stats()
            report.check(tag)
            requests = max(1, stats["requests"])
            shed = stats["overloads"]
            if shed > requests * 0.5:
                report.record(tag, values[0],
                              f"unbounded shedding: {shed}/{requests}")
            if stats["breaker_trips"] != 0:
                report.record(tag, values[0],
                              f"healing faults tripped the breaker "
                              f"{stats['breaker_trips']}x")

    # -- control/hedge: the dedicated hedge leg ----------------------
    tag = "control/hedge"
    report.check(tag)
    plan = faults.FaultPlan([faults.FaultSpec(
        "pool.format_shard", "stall", shard=0, attempt=0, stall=0.8)],
        seed)
    span = packed[:256 * itemsize]
    try:
        with BulkPool(jobs=2, kind="thread", fmt=fmt, deadline=5.0,
                      hedge=True, hedge_min=0.05,
                      hedge_with_faults=True) as pool:
            with faults.armed(plan):
                got = pool.format_bulk(span)
            stats = pool.stats()
        if got != plane_of(0, 256):
            report.record(tag, values[0], "hedged plane differs")
        if stats["hedges"] < 1 or stats["hedge_wins"] < 1:
            report.record(tag, values[0],
                          f"hedge unaccounted: hedges={stats['hedges']} "
                          f"wins={stats['hedge_wins']}")
    except ReproError as exc:
        report.record(tag, values[0], f"hedge leg failed: {exc!r}")

    # -- control/rotation: live snapshot rotation --------------------
    tag = "control/rotation"
    report.check(tag)
    with tempfile.TemporaryDirectory() as td:
        path = os.path.join(td, "rotated.snap")
        with serving(jobs=1, kind="thread", batch_window=0.0,
                     rotate_snapshot=path, rotate_every=64,
                     observe_stride=1) as daemon:
            with ServeClient(daemon.host, daemon.port) as client:
                a, b = spans[0]
                before = client.format(packed[a * itemsize:b * itemsize],
                                       fmt.name)
                deadline = _time.monotonic() + 10.0
                while (daemon.stats()["snapshot_rotations"] == 0
                       and _time.monotonic() < deadline):
                    _time.sleep(0.01)
                after = client.format(packed[a * itemsize:b * itemsize],
                                      fmt.name)
            rotations = daemon.stats()["snapshot_rotations"]
        if rotations < 1:
            report.record(tag, values[0], "rotation never happened")
        elif not os.path.exists(path):
            report.record(tag, values[0], "rotation counted but no file")
        if before != after or before != plane_of(a, b):
            report.record(tag, values[0],
                          "rotation changed response bytes")
        # A rotated snapshot may only skip work, never change bytes:
        # an engine warmed from it must match the cold oracle exactly.
        if os.path.exists(path):
            warm = Engine(snapshot=path)
            for i, v in enumerate(values[:512]):
                report.check(tag)
                got = warm.format(v, fmt=fmt)
                if got != scalar[i]:
                    report.record(tag, v,
                                  f"warm {got!r} != cold {scalar[i]!r}")

    # -- control/health: the HEALTH opcode over the wire -------------
    tag = "control/health"
    report.check(tag)
    with serving(jobs=1, kind="thread", batch_window=0.0,
                 breaker_threshold=3, slo_target_ms=100.0,
                 observe_stride=1) as daemon:
        with ServeClient(daemon.host, daemon.port) as client:
            client.format(packed[:32 * itemsize], fmt.name)
            try:
                health = client.health()
            except ReproError as exc:
                report.record(tag, values[0], f"HEALTH failed: {exc!r}")
            else:
                if not (isinstance(health.get("breakers"), dict)
                        and isinstance(health.get("admission"), dict)
                        and isinstance(health.get("observer"), dict)
                        and health["observer"].get("requests", 0) >= 1
                        and "limit_bytes" in health["admission"]):
                    report.record(tag, values[0],
                                  f"malformed health payload: "
                                  f"{sorted(health)}")
    return report


# ----------------------------------------------------------------------
# CLI: ``python -m repro.verify`` (the nightly fuzz entry point)
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    """Run the battery from the command line; exit 1 on any mismatch."""
    import argparse

    from repro.floats.formats import STANDARD_FORMATS

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential verification battery: every printing "
                    "tier against independent oracles.")
    parser.add_argument("--n", type=int, default=None,
                        help="values sampled per format (default 200; "
                             "50000 with the deep batteries: --roundtrip/"
                             "--bulk/--buffer/--chaos/--serve/--warm/"
                             "--control)")
    parser.add_argument("--seed", default="0",
                        help="sample seed: an integer, or 'fresh' for a "
                             "new random seed (nightly fuzz; the chosen "
                             "seed is printed for reproduction)")
    parser.add_argument("--formats", nargs="*", metavar="NAME",
                        default=["binary16", "binary32", "binary64"],
                        choices=sorted(STANDARD_FORMATS),
                        help="formats to verify (default: binary16/32/64)")
    parser.add_argument("--roundtrip", action="store_true",
                        help="run the print↔parse round-trip battery "
                             "(tiered read engine + host float() oracle) "
                             "instead of the printing battery")
    parser.add_argument("--bulk", action="store_true",
                        help="run the bulk serving-layer battery: every "
                             "columnar/pooled route must be byte-identical "
                             "to the scalar engine")
    parser.add_argument("--buffer", action="store_true",
                        help="run the byte-plane pipeline battery: "
                             "parse_buffer/format_buffer must be byte/bit-"
                             "identical to the scalar engines, with "
                             "per-tier mismatch attribution")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos battery: the bulk byte-identity "
                             "checks under injected worker crashes, shard "
                             "stalls, payload corruption and fast-tier "
                             "raises")
    parser.add_argument("--serve", action="store_true",
                        help="run the serving battery: loopback daemon "
                             "round trips (format and read ops, pipelined "
                             "bursts, typed error responses) must be byte-"
                             "identical to the scalar engine")
    parser.add_argument("--warm", action="store_true",
                        help="run the warm-start battery: snapshot-warmed "
                             "engines and pools must be byte-identical to "
                             "cold ones, and corrupt snapshots must fall "
                             "back cold (counted, never served)")
    parser.add_argument("--contenders", action="store_true",
                        help="run the contender-lane battery: the "
                             "schubfach-only writer must be byte-identical "
                             "to the exact tier with zero bails, and the "
                             "lemire-only reader must resolve every "
                             "certified-range literal with zero exact-"
                             "rational consultations")
    parser.add_argument("--control", action="store_true",
                        help="run the control-plane battery: circuit "
                             "breakers, hedged shards, adaptive admission "
                             "and live snapshot rotation replayed under "
                             "the chaos plans — shed or reroute, never "
                             "change a byte")
    args = parser.parse_args(argv)
    if sum((args.roundtrip, args.bulk, args.buffer, args.chaos,
            args.serve, args.warm, args.contenders, args.control)) > 1:
        parser.error("--roundtrip, --bulk, --buffer, --chaos, --serve, "
                     "--warm, --contenders and --control are separate "
                     "batteries")
    seed = (random.SystemRandom().randrange(2**32) if args.seed == "fresh"
            else int(args.seed))
    deep = (args.roundtrip or args.bulk or args.buffer or args.chaos
            or args.serve or args.warm or args.contenders or args.control)
    n = args.n if args.n is not None else (50000 if deep else 200)
    if args.control:
        battery, kind = verify_control, "control"
    elif args.contenders:
        battery, kind = verify_contenders, "contenders"
    elif args.warm:
        battery, kind = verify_warm, "warm"
    elif args.serve:
        battery, kind = verify_serve, "serve"
    elif args.chaos:
        battery, kind = verify_chaos, "chaos"
    elif args.buffer:
        battery, kind = verify_buffer, "buffer"
    elif args.bulk:
        battery, kind = verify_bulk, "bulk"
    elif args.roundtrip:
        battery, kind = verify_roundtrip, "round-trip"
    else:
        battery, kind = verify_format, "verification"
    print(f"{kind} battery: n={n} seed={seed} "
          f"formats={','.join(args.formats)}")
    failures = 0
    for name in args.formats:
        report = battery(STANDARD_FORMATS[name], n, seed)
        print(report.tier_summary())
        for mismatch in report.mismatches[:10]:
            print(f"    {mismatch}")
        failures += len(report.mismatches)
    if failures:
        print(f"FAILED: {failures} disagreements (seed {seed})")
        return 1
    print("all tiers agree on every sampled value")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
