"""Exact correctly rounded decimal→binary conversion (Clinger's problem).

This is the ground-truth reader: it rounds an exact rational to any
:class:`FloatFormat` under any :class:`ReaderMode` using only integer
arithmetic, with full denormal, underflow and overflow handling.  The
paper's free-format guarantee — "converts to the same number when read
back in" — is *verified* against this module throughout the test suite.

The method is Clinger's AlgorithmM shape: locate the exponent window by
integer comparison, take one exact ``divmod`` for the significand and
remainder, and decide the final digit from the remainder (IEEE semantics
for every mode, including overflow-to-max-finite under truncating modes).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple, Union

from repro.core.rounding import ReaderMode
from repro.errors import RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.reader.parse import ParsedNumber, parse_decimal

__all__ = ["round_rational", "read_decimal", "read_fraction", "ilog",
           "clamp_extreme"]


def ilog(num: int, den: int, b: int) -> int:
    """``floor(log_b(num/den))`` for positive num/den, exactly.

    Starts from a digit-count estimate and corrects by comparison; the
    estimate is within one, so at most two adjustment steps run.
    """
    if num <= 0 or den <= 0:
        raise RangeError("ilog requires a positive rational")
    est = _digit_count(num, b) - _digit_count(den, b)
    # Correct: want b**e <= num/den < b**(e+1).
    e = est
    while _cmp_pow(num, den, b, e) < 0:  # num/den < b**e
        e -= 1
    while _cmp_pow(num, den, b, e + 1) >= 0:  # num/den >= b**(e+1)
        e += 1
    return e


def _digit_count(n: int, b: int) -> int:
    if b == 2:
        return n.bit_length()
    count = 0
    while n:
        n //= b
        count += 1
    return count


def _cmp_pow(num: int, den: int, b: int, e: int) -> int:
    """Sign of ``num/den - b**e``."""
    if e >= 0:
        lhs, rhs = num, den * b**e
    else:
        lhs, rhs = num * b**-e, den
    return (lhs > rhs) - (lhs < rhs)


def _round_significand(f: int, rem: int, den: int, mode: ReaderMode,
                       negative: bool) -> int:
    """Given magnitude ``(f + rem/den)``, pick ``f`` or ``f + 1``."""
    if rem == 0:
        return f
    if mode in (ReaderMode.TOWARD_ZERO,):
        return f
    if mode is ReaderMode.TOWARD_POSITIVE:
        return f if negative else f + 1
    if mode is ReaderMode.TOWARD_NEGATIVE:
        return f + 1 if negative else f
    # Round-to-nearest family.
    double_rem = 2 * rem
    if double_rem < den:
        return f
    if double_rem > den:
        return f + 1
    if mode is ReaderMode.NEAREST_AWAY:
        return f + 1
    if mode is ReaderMode.NEAREST_TO_ZERO:
        return f
    # NEAREST_EVEN and NEAREST_UNKNOWN (documented to read like IEEE).
    return f if f % 2 == 0 else f + 1


def round_rational(num: int, den: int, fmt: FloatFormat = BINARY64,
                   mode: ReaderMode = ReaderMode.NEAREST_EVEN,
                   negative: bool = False) -> Flonum:
    """Correctly round the positive rational ``num/den`` to ``fmt``.

    ``negative`` carries the sign for directed modes and the sign of
    the returned value; the magnitude rounded is always ``num/den``.
    """
    if num < 0 or den <= 0:
        raise RangeError("round_rational requires a non-negative rational")
    sign = 1 if negative else 0
    if num == 0:
        return Flonum.zero(fmt, sign)
    b = fmt.radix

    e = ilog(num, den, b)  # b**e <= num/den < b**(e+1)
    t = max(e - (fmt.precision - 1), fmt.min_e)

    # Exact significand and remainder at exponent t: num/den = (f + rem/d) * b**t
    if t >= 0:
        d = den * b**t
        f, rem = divmod(num, d)
    else:
        d = den
        f, rem = divmod(num * b**-t, d)

    f = _round_significand(f, rem, d, mode, negative)
    if f >= fmt.mantissa_limit:
        # Carry: b**p * b**t == b**(p-1) * b**(t+1).
        f //= b
        t += 1
    if t > fmt.max_e:
        return _overflow(fmt, mode, negative)
    if f == 0:
        return Flonum.zero(fmt, sign)
    return Flonum.finite(sign, f, t, fmt)


def _overflow(fmt: FloatFormat, mode: ReaderMode, negative: bool) -> Flonum:
    """IEEE overflow: infinity for nearest modes and the directed mode that
    points away from zero; the largest finite value otherwise."""
    sign = 1 if negative else 0
    to_infinity = mode in (
        ReaderMode.NEAREST_EVEN, ReaderMode.NEAREST_AWAY,
        ReaderMode.NEAREST_TO_ZERO, ReaderMode.NEAREST_UNKNOWN,
    )
    if mode is ReaderMode.TOWARD_POSITIVE:
        to_infinity = not negative
    elif mode is ReaderMode.TOWARD_NEGATIVE:
        to_infinity = negative
    if to_infinity:
        return Flonum.infinity(fmt, sign)
    f, e = fmt.largest_finite
    return Flonum.finite(sign, f, e, fmt)


def clamp_extreme(digits: int, exponent: int, fmt: FloatFormat,
                  mode: ReaderMode, negative: bool) -> Optional[Flonum]:
    """Resolve ``±digits * 10**exponent`` when the exponent is so extreme
    that building the exact rational would be astronomically expensive —
    ``1e999999999`` must not cost a gigabit power of ten.

    Returns the correctly rounded result for definite overflow (the
    value provably exceeds every rounding boundary above the largest
    finite) and definite underflow (provably inside ``(0, minsub/2)``,
    rounded via a cheap proxy with the same sign and window so every
    mode behaves right), or None when the literal needs exact
    arithmetic.  The bounds use ``len(str(radix))`` as an integer upper
    bound on ``log10(radix)`` — conservative, so the exact path keeps
    every case within a few thousand decimal orders of the format's
    range, where powers of ten are cheap.
    """
    if digits == 0:
        return None
    scale = len(str(fmt.radix))
    # Decimal window from the bit length alone — ``digits`` may exceed
    # CPython's int→str digit limit, so no str() and no powers of ten:
    # 30102/100000 under- and 30103/100000 over-approximate log10(2).
    bl = digits.bit_length()
    lo = (bl - 1) * 30102 // 100000 + exponent   # value >= 10**lo
    hi = bl * 30103 // 100000 + 1 + exponent     # value <  10**hi
    if lo >= (fmt.max_e + fmt.precision) * scale:
        return _overflow(fmt, mode, negative)
    if hi <= (fmt.min_e - 1) * scale:
        b = fmt.radix
        return round_rational(1, b ** (2 - fmt.min_e), fmt, mode,
                              negative=negative)
    return None


def read_fraction(value: Union[Fraction, Tuple[int, int]],
                  fmt: FloatFormat = BINARY64,
                  mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
    """Round a signed exact rational to a float of ``fmt``."""
    if isinstance(value, tuple):
        value = Fraction(*value)
    negative = value < 0
    mag = -value if negative else value
    return round_rational(mag.numerator, mag.denominator, fmt, mode,
                          negative=negative)


def read_decimal(text: str, fmt: FloatFormat = BINARY64,
                 mode: ReaderMode = ReaderMode.NEAREST_EVEN) -> Flonum:
    """Correctly rounded value of a decimal literal (the accurate reader).

    This is the reader the paper's round-trip guarantee quantifies over:
    ``read_decimal(format_shortest(v)) == v`` for every finite ``v``.
    """
    parsed: ParsedNumber = parse_decimal(text)
    if parsed.special == "nan":
        return Flonum.nan(fmt)
    if parsed.special == "inf":
        return Flonum.infinity(fmt, parsed.sign)
    if parsed.is_zero:
        return Flonum.zero(fmt, parsed.sign)
    num = parsed.digits
    q = parsed.exponent
    clamped = clamp_extreme(num, q, fmt, mode, bool(parsed.sign))
    if clamped is not None:
        return clamped
    if q >= 0:
        num *= 10**q
        den = 1
    else:
        den = 10**-q
    return round_rational(num, den, fmt, mode, negative=bool(parsed.sign))
