"""Accurate decimal→binary reading (Clinger 1990, the paper's ref [1]).

The printing algorithm's guarantee is stated relative to an accurate input
routine; this package provides one (three, in fact): an exact one-shot
converter for every rounding mode, Clinger's AlgorithmR refinement loop,
and a Bellerophon-style host-float fast path with exact fallback.
"""

from repro.reader.algorithm_r import algorithm_r, initial_guess, read_decimal_r
from repro.reader.bellerophon import (
    BellerophonResult,
    bellerophon,
    read_decimal_fast,
)
from repro.reader.exact import (
    ilog,
    read_decimal,
    read_fraction,
    round_rational,
)
from repro.reader.parse import ParsedNumber, parse_decimal
from repro.reader.truncated import (
    TRUNCATION_DIGITS,
    read_decimal_truncated,
    truncate_significand,
)


def read(text, fmt=None, mode=None):
    """Correctly rounded value of a literal through the shared tiered
    read engine (:func:`repro.engine.reader.default_read_engine`) —
    same semantics as :func:`read_decimal`, typically much faster.

    Imported lazily so this package stays usable without the engine.
    """
    from repro.core.rounding import ReaderMode
    from repro.engine.reader import default_read_engine
    from repro.floats.formats import BINARY64

    return default_read_engine().read(
        text, fmt if fmt is not None else BINARY64,
        mode if mode is not None else ReaderMode.NEAREST_EVEN)


def read_many(texts, fmt=None, mode=None):
    """Batch :func:`read` through the shared tiered read engine."""
    from repro.core.rounding import ReaderMode
    from repro.engine.reader import default_read_engine
    from repro.floats.formats import BINARY64

    return default_read_engine().read_many(
        texts, fmt if fmt is not None else BINARY64,
        mode if mode is not None else ReaderMode.NEAREST_EVEN)


__all__ = [
    "ParsedNumber",
    "parse_decimal",
    "ilog",
    "read",
    "read_many",
    "read_decimal",
    "read_decimal_truncated",
    "truncate_significand",
    "TRUNCATION_DIGITS",
    "read_fraction",
    "round_rational",
    "algorithm_r",
    "initial_guess",
    "read_decimal_r",
    "BellerophonResult",
    "bellerophon",
    "read_decimal_fast",
]
