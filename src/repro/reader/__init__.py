"""Accurate decimal→binary reading (Clinger 1990, the paper's ref [1]).

The printing algorithm's guarantee is stated relative to an accurate input
routine; this package provides one (three, in fact): an exact one-shot
converter for every rounding mode, Clinger's AlgorithmR refinement loop,
and a Bellerophon-style host-float fast path with exact fallback.
"""

from repro.reader.algorithm_r import algorithm_r, initial_guess, read_decimal_r
from repro.reader.bellerophon import (
    BellerophonResult,
    bellerophon,
    read_decimal_fast,
)
from repro.reader.exact import (
    ilog,
    read_decimal,
    read_fraction,
    round_rational,
)
from repro.reader.parse import ParsedNumber, parse_decimal
from repro.reader.truncated import TRUNCATION_DIGITS, read_decimal_truncated

__all__ = [
    "ParsedNumber",
    "parse_decimal",
    "ilog",
    "read_decimal",
    "read_decimal_truncated",
    "TRUNCATION_DIGITS",
    "read_fraction",
    "round_rational",
    "algorithm_r",
    "initial_guess",
    "read_decimal_r",
    "BellerophonResult",
    "bellerophon",
    "read_decimal_fast",
]
