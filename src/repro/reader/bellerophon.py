"""Bellerophon-style reader: float fast paths with an exact fallback.

Clinger's key observation: when the decimal significand ``d`` and the
power ``10**q`` are both exactly representable, a single host
floating-point multiply or divide — which IEEE guarantees is correctly
rounded — produces the correctly rounded result with no big-integer work
at all.  For binary64 that covers ``d < 2**53`` with ``|q| <= 22``
(``10**22 = 2**22 * 5**22`` is the largest exact power of ten), plus a
digit-shifting extension for slightly larger ``q``.

Everything else falls back to the exact reader.  The fast path handles the
overwhelming majority of human-written literals; the test suite checks it
agrees with ground truth everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.reader.exact import round_rational
from repro.reader.parse import parse_decimal

__all__ = ["BellerophonResult", "read_decimal_fast", "bellerophon"]

#: Largest exponent with 10**q exactly representable in binary64.
_MAX_EXACT_POW10 = 22
#: 10**k fits in 53 bits for k <= 15, allowing d to absorb extra digits.
_MAX_SHIFT = 15

_EXACT_POW10 = [10.0**k for k in range(_MAX_EXACT_POW10 + 1)]


@dataclass(frozen=True)
class BellerophonResult:
    """Conversion result plus which path produced it (for the benches)."""

    value: Flonum
    fast_path: bool


def bellerophon(d: int, q: int, negative: bool = False,
                fmt: FloatFormat = BINARY64) -> BellerophonResult:
    """Convert ``±d * 10**q`` with the fast path when it applies."""
    if d == 0:
        # Settle zero before any arithmetic: the sign must survive even
        # on paths where the host product would be computed as +0.0
        # (e.g. a zero significand with a huge exponent) — IEEE signed
        # zero is part of the round-trip contract.
        return BellerophonResult(Flonum.zero(fmt, 1 if negative else 0),
                                 True)
    if fmt is BINARY64 or fmt == BINARY64:
        fast = _try_fast(d, q)
        if fast is not None:
            value = Flonum.from_float(-fast if negative else fast)
            return BellerophonResult(value=value, fast_path=True)
    num, den = (d * 10**q, 1) if q >= 0 else (d, 10**-q)
    value = round_rational(num, den, fmt, negative=negative)
    return BellerophonResult(value=value, fast_path=False)


def _try_fast(d: int, q: int):
    """The correctly-rounded-by-construction host-float cases, or None."""
    if d >= 1 << 53:
        return None
    if 0 <= q <= _MAX_EXACT_POW10:
        return float(d) * _EXACT_POW10[q]
    if -_MAX_EXACT_POW10 <= q < 0:
        return float(d) / _EXACT_POW10[-q]
    if _MAX_EXACT_POW10 < q <= _MAX_EXACT_POW10 + _MAX_SHIFT:
        # Shift digits from the exponent into the significand while both
        # stay exact; one multiply then rounds correctly.
        shifted = d * 10 ** (q - _MAX_EXACT_POW10)
        if shifted < 1 << 53:
            return float(shifted) * _EXACT_POW10[_MAX_EXACT_POW10]
    return None


def read_decimal_fast(text: str, fmt: FloatFormat = BINARY64
                      ) -> BellerophonResult:
    """String front-end for :func:`bellerophon` (nearest-even)."""
    parsed = parse_decimal(text)
    if parsed.special == "nan":
        return BellerophonResult(Flonum.nan(fmt), True)
    if parsed.special == "inf":
        return BellerophonResult(Flonum.infinity(fmt, parsed.sign), True)
    if parsed.is_zero:
        return BellerophonResult(Flonum.zero(fmt, parsed.sign), True)
    return bellerophon(parsed.digits, parsed.exponent,
                       negative=bool(parsed.sign), fmt=fmt)
