"""Truncating reader: correctly rounded input in bounded work.

A hostile (or machine-generated) literal can carry millions of digits —
``1.000…0001e-300`` — and the one-shot exact reader would build
correspondingly huge integers.  The classic defense (used by every
production strtod): keep only the first ``H`` significant digits plus a
*sticky* flag for the rest, bracket the value between the two
truncations, and round each end; when both ends land on the same float,
that float is provably the correctly rounded result.  Only the rare
straddling case (value very near a rounding boundary *and* carrying deep
digits) falls back to the exact reader.

``H = 20`` guarantees the fast path decides whenever the input isn't
within 10^-20 relative distance of a boundary — in practice everything
but adversarial inputs.
"""

from __future__ import annotations

import re
from typing import Tuple

from repro.core.rounding import ReaderMode
from repro.errors import ParseError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.reader.exact import clamp_extreme, read_decimal, round_rational

__all__ = ["read_decimal_truncated", "truncate_significand",
           "TRUNCATION_DIGITS"]

#: Significant digits kept before going sticky.
TRUNCATION_DIGITS = 20

#: ``log10(2)`` as a rational upper bound (numerator, denominator) for
#: the digit-count estimate in :func:`truncate_significand`; the tiny
#: excess (4.3e-9 per bit) stays under one digit for any significand a
#: machine can hold, and the loop below corrects overshoot anyway.
_LOG10_2_NUM, _LOG10_2_DEN = 30103, 100000


def truncate_significand(digits: int, exponent: int,
                         keep: int = TRUNCATION_DIGITS
                         ) -> Tuple[int, int, bool]:
    """Truncate ``digits * 10**exponent`` to at most ``keep`` digits.

    Returns ``(d, q, sticky)`` with the original value contained in the
    interval ``[d, d + 1) * 10**q`` — ``sticky`` is set exactly when
    nonzero digits were dropped (so the value is *strictly* inside).
    Shared by the string-level truncating reader above and the engine's
    interval tier (:mod:`repro.engine.reader`), which brackets the same
    way but over 64-bit scaled integers.
    """
    limit = 10**keep
    if digits < limit:
        return digits, exponent, False
    drop = ((digits.bit_length() - 1) * _LOG10_2_NUM // _LOG10_2_DEN
            + 1 - keep)
    if drop < 1:
        drop = 1
    d, rest = divmod(digits, 10**drop)
    sticky = rest != 0
    while d >= limit:  # digit-count estimate was one low
        d, extra = divmod(d, 10)
        sticky = sticky or extra != 0
        drop += 1
    return d, exponent + drop, sticky

_NUMBER_RE = re.compile(
    r"""^(?P<sign>[+-])?
        (?P<int>[0-9]*)
        (?:\.(?P<frac>[0-9]*))?
        (?:[eE](?P<exp>[+-]?[0-9]+))?$""",
    re.VERBOSE,
)


def _truncate_parse(text: str) -> Tuple[int, int, int, bool]:
    """``(sign, digits, exponent, sticky)`` keeping only H digits.

    The value lies in ``[digits, digits + sticky] * 10**exponent``.
    """
    s = text.strip()
    m = _NUMBER_RE.match(s)
    if m is None:
        raise ParseError(f"malformed number: {text!r}")
    int_part = m.group("int") or ""
    frac_part = m.group("frac") or ""
    if not int_part and not frac_part:
        raise ParseError(f"no digits in: {text!r}")
    sign = 1 if m.group("sign") == "-" else 0
    exp10 = int(m.group("exp") or 0)

    all_digits = int_part + frac_part
    point_exp = exp10 - len(frac_part)  # value = all_digits * 10**point_exp

    stripped = all_digits.lstrip("0")
    if not stripped:
        return sign, 0, 0, False
    kept = stripped[:TRUNCATION_DIGITS]
    dropped = stripped[TRUNCATION_DIGITS:]
    sticky = any(c != "0" for c in dropped)
    digits = int(kept)
    exponent = point_exp + len(dropped)
    return sign, digits, exponent, sticky


def read_decimal_truncated(text: str, fmt: FloatFormat = BINARY64,
                           mode: ReaderMode = ReaderMode.NEAREST_EVEN
                           ) -> Flonum:
    """Correctly rounded value of a literal, with bounded digit work.

    Semantics identical to :func:`repro.reader.exact.read_decimal`
    (including specials and ``#`` marks, which route to the exact
    parser); only the evaluation strategy differs.
    """
    if not isinstance(text, str):
        raise ParseError(f"expected a numeric string, got "
                         f"{type(text).__name__}")
    s = text.strip()
    if not s or s[0] == "#" or any(c in "#xXnNiI" for c in s[:3]):
        # Specials, hex-ish or hash-marked input: not this fast path's
        # business.
        return read_decimal(text, fmt, mode)
    try:
        sign, digits, exponent, sticky = _truncate_parse(s)
    except ParseError:
        return read_decimal(text, fmt, mode)  # e.g. 'inf'; reuse its errors
    if digits == 0 and not sticky:
        return Flonum.zero(fmt, sign)
    negative = bool(sign)
    # The truncated magnitude shares the exact value's decimal window
    # (value in [digits, digits+1) * 10**q), so definite over/underflow
    # resolves here too — before any huge power of ten is built.
    clamped = clamp_extreme(digits, exponent, fmt, mode, negative)
    if clamped is not None:
        return clamped
    # Work on the magnitude; directed modes mirror for negative values.
    mag_mode = mode.mirrored() if negative else mode

    def _round(d: int, q: int, m: ReaderMode) -> Flonum:
        if q >= 0:
            return round_rational(d * 10**q, 1, fmt, m, negative=False)
        return round_rational(d, 10**-q, fmt, m, negative=False)

    if not sticky:
        result = _round(digits, exponent, mag_mode)
        return result.negate() if negative else result

    # The magnitude lies strictly inside (digits, digits+1) * 10**exponent.
    # Rounding is monotone, so the result lies between the one-sided
    # limits of the mode at the two endpoints; when they coincide, that
    # float is the answer regardless of the dropped tail.
    lo = _right_limit(digits, exponent, fmt, mag_mode, _round)
    hi = _left_limit(digits + 1, exponent, fmt, mag_mode, _round)
    if lo == hi:
        return lo.negate() if negative else lo
    # Genuine straddle: the value sits within 10**-H (relative) of a
    # rounding boundary.  Decide with full precision.
    return read_decimal(text, fmt, mode)


def _right_limit(d: int, q: int, fmt: FloatFormat, mag_mode: ReaderMode,
                 _round) -> Flonum:
    """``lim x→A⁺ round(x)`` for ``A = d * 10**q`` (positive magnitude)."""
    from repro.floats.ulp import successor

    if mag_mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_NEGATIVE):
        # floor on magnitudes is right-continuous.
        return _round(d, q, mag_mode)
    if mag_mode is ReaderMode.TOWARD_POSITIVE:
        # ceil jumps exactly at representable values: the limit from
        # above is the successor of the floor.
        below = _round(d, q, ReaderMode.TOWARD_ZERO)
        if below.is_zero:
            return Flonum.finite(0, 1, fmt.min_e, fmt)
        nxt = successor(below)
        return nxt
    # Nearest family: jumps at midpoints, where the limit from above is
    # the upper neighbour — i.e. ties-away rounding of the endpoint.
    return _round(d, q, ReaderMode.NEAREST_AWAY)


def _left_limit(d: int, q: int, fmt: FloatFormat, mag_mode: ReaderMode,
                _round) -> Flonum:
    """``lim x→B⁻ round(x)`` for ``B = d * 10**q`` (positive magnitude)."""
    from repro.floats.ulp import predecessor

    if mag_mode is ReaderMode.TOWARD_POSITIVE:
        # ceil is left-continuous.
        return _round(d, q, mag_mode)
    if mag_mode in (ReaderMode.TOWARD_ZERO, ReaderMode.TOWARD_NEGATIVE):
        # floor jumps at representable values: limit from below is the
        # predecessor of the ceiling.
        above = _round(d, q, ReaderMode.TOWARD_POSITIVE)
        if above.is_infinite:
            f, e = fmt.largest_finite
            return Flonum.finite(0, f, e, fmt)
        if above.is_zero:  # pragma: no cover - B > 0 always
            return above
        return predecessor(above)
    # Nearest family: limit from below at a midpoint is the lower
    # neighbour — ties-toward-zero rounding of the endpoint.
    return _round(d, q, ReaderMode.NEAREST_TO_ZERO)
