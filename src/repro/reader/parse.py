"""Decimal-string parsing for the accurate reader.

Splits a numeric literal into an exact integer significand and a power of
ten, with no value change: ``"-12.34e5"`` becomes ``(sign=1, digits=1234,
exponent=3)`` meaning ``-1234 * 10**3``.

The parser also accepts the paper's ``#`` insignificance marks (read as
zeros, flagged in the result) so strings produced by the fixed-format
printer can be read back, and the usual ``inf``/``nan`` spellings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.errors import ParseError

__all__ = ["ParsedNumber", "parse_decimal"]

_NUMBER_RE = re.compile(
    r"""^(?P<sign>[+-])?
        (?P<int>[0-9#]*)
        (?:\.(?P<frac>[0-9#]*))?
        (?:[eE](?P<exp>[+-]?[0-9]+))?$""",
    re.VERBOSE,
)

_SPECIAL = {
    "inf": ("inf", 0), "+inf": ("inf", 0), "-inf": ("inf", 1),
    "infinity": ("inf", 0), "+infinity": ("inf", 0), "-infinity": ("inf", 1),
    "nan": ("nan", 0), "+nan": ("nan", 0), "-nan": ("nan", 1),
}


@dataclass(frozen=True)
class ParsedNumber:
    """An exactly parsed literal: ``(-1)**sign * digits * 10**exponent``."""

    sign: int
    digits: int
    exponent: int
    special: Optional[str] = None  # 'inf' | 'nan' | None
    insignificant: int = 0  # number of '#' marks seen

    @property
    def is_zero(self) -> bool:
        return self.special is None and self.digits == 0

    def to_fraction(self) -> Fraction:
        if self.special is not None:
            raise ParseError(f"{self.special} has no rational value")
        mag = Fraction(self.digits) * Fraction(10) ** self.exponent
        return -mag if self.sign else mag


def _int_from_digits(s: str) -> int:
    """``int(s)`` unconstrained by CPython's str→int digit limit.

    Million-digit literals are legal inputs to an accurate reader;
    chunked conversion keeps them quadratic-free enough and sidesteps
    ``sys.int_max_str_digits``.
    """
    chunk = 4000
    if len(s) <= chunk:
        return int(s)
    value = 0
    for i in range(0, len(s), chunk):
        part = s[i:i + chunk]
        value = value * 10 ** len(part) + int(part)
    return value


def _scan_decimal(s: str):
    """Fast scan of a plain (pre-stripped) literal, or None.

    Returns ``(sign, digits, exponent)`` for ordinary finite literals —
    the same normalized fields :func:`parse_decimal` would produce —
    without building a :class:`ParsedNumber`.  Anything unusual
    (specials, ``#`` marks, malformed input, huge digit strings that
    need chunked conversion) returns None so the caller can fall back
    to the full parser.  The conversion engine's hot path lives on
    this.
    """
    # str.partition/str.isdigit instead of the regex: same acceptance
    # (the isascii gate keeps isdigit to [0-9], matching the pattern's
    # ASCII classes) at roughly half the cost per literal.
    if not s.isascii():
        return None
    body = s
    c = s[:1]
    if c == "-":
        sign = 1
        body = s[1:]
    else:
        sign = 0
        if c == "+":
            body = s[1:]
    mant, sep, exp_part = body.partition("e")
    if not sep:
        mant, sep, exp_part = body.partition("E")
    if sep:
        ec = exp_part[:1]
        if ec == "-":
            exp_part = exp_part[1:]
            if not exp_part.isdigit():
                return None
            exponent = -int(exp_part)
        else:
            if ec == "+":
                exp_part = exp_part[1:]
            if not exp_part.isdigit():
                return None
            exponent = int(exp_part)
    else:
        exponent = 0
    int_part, _, frac_part = mant.partition(".")
    if int_part and not int_part.isdigit():
        return None
    if frac_part:
        if not frac_part.isdigit():
            return None
        exponent -= len(frac_part)
        digits_str = int_part + frac_part
    else:
        digits_str = int_part
    if not digits_str or len(digits_str) > 4000:
        return None
    digits = int(digits_str)
    if digits:
        while digits % 10 == 0:
            digits //= 10
            exponent += 1
    else:
        exponent = 0
    return sign, digits, exponent


def parse_decimal(text: str) -> ParsedNumber:
    """Parse a decimal literal exactly.

    Raises :class:`ParseError` on malformed input.  ``#`` marks (from the
    fixed-format printer) are read as zero digits and counted.
    """
    if not isinstance(text, str):
        raise ParseError(f"expected a numeric string, got "
                         f"{type(text).__name__}")
    s = text.strip()
    if not s:
        raise ParseError("empty string")
    m = _NUMBER_RE.match(s)
    if m is None:
        # Only non-numbers reach here, so the special spellings are
        # probed off the hot path.
        special = _SPECIAL.get(s.lower())
        if special is not None:
            kind, sign = special
            return ParsedNumber(sign=sign, digits=0, exponent=0,
                                special=kind)
        raise ParseError(f"malformed number: {text!r}")
    sign_part, int_part, frac_part, exp_part = m.groups()
    if frac_part is None:
        frac_part = ""
    if not int_part and not frac_part:
        raise ParseError(f"no digits in: {text!r}")
    digits_str = int_part + frac_part
    if "#" in digits_str:
        hashes = digits_str.count("#")
        if "#" in digits_str.rstrip("#"):
            raise ParseError(f"# marks must be trailing: {text!r}")
        digits_str = digits_str.replace("#", "0")
    else:
        hashes = 0
    sign = 1 if sign_part == "-" else 0
    exponent = (int(exp_part) if exp_part else 0) - len(frac_part)
    digits = _int_from_digits(digits_str) if digits_str else 0
    # Normalize: strip trailing zeros into the exponent so equal values
    # parse identically (keeps the reader's integer work small).
    if digits:
        while digits % 10 == 0:
            digits //= 10
            exponent += 1
    else:
        exponent = 0
    return ParsedNumber(sign=sign, digits=digits, exponent=exponent,
                        insignificant=hashes)
