"""Clinger's AlgorithmR: iterative refinement to the correctly rounded float.

AlgorithmR takes a cheap initial approximation ``z ≈ d * 10**q`` and walks
it to the correctly rounded result by *exact* integer comparison of the
input against ``z`` and its neighbour midpoints, moving one ulp per step.
Because the seed is accurate to within one ulp, the loop performs a couple
of big-integer comparisons instead of the full-precision division the
one-shot method uses.

This reproduces reference [1] of the paper (Clinger, PLDI 1990), the input
routine whose behaviour the printing algorithm's round-trip guarantee is
defined against.  Round-to-nearest-even only, like the original.
"""

from __future__ import annotations

from repro.errors import RangeError
from repro.floats.formats import BINARY64, FloatFormat
from repro.floats.model import Flonum
from repro.floats.ulp import predecessor, successor
from repro.reader.exact import ilog
from repro.reader.parse import parse_decimal

__all__ = ["algorithm_r", "read_decimal_r", "initial_guess"]

#: Safety bound on refinement steps; the truncation seed is within one ulp,
#: so more than a handful of steps indicates a logic error.
_MAX_STEPS = 64


def initial_guess(num: int, den: int, fmt: FloatFormat) -> Flonum:
    """A truncation-based seed within one ulp of ``num/den``.

    Finds the exponent window exactly and truncates the significand —
    deliberately *not* correctly rounded (always at or below the true
    value) so the refinement loop has work to do.
    """
    b = fmt.radix
    e = ilog(num, den, b)
    t = max(e - (fmt.precision - 1), fmt.min_e)
    if t >= 0:
        f = num // (den * b**t)
    else:
        f = (num * b**-t) // den
    if f >= fmt.mantissa_limit:  # pragma: no cover - ilog makes this rare
        f //= b
        t += 1
    if t > fmt.max_e:
        # Out-of-range magnitude: seed at the largest finite value; the
        # refinement loop's overflow-midpoint comparison decides inf.
        f, t = fmt.largest_finite
        return Flonum.finite(0, f, t, fmt)
    if f == 0:
        # Below the smallest denormal: seed there; the loop's zero-midpoint
        # comparison decides whether to round down to zero.
        return Flonum.finite(0, 1, fmt.min_e, fmt)
    return Flonum.finite(0, f, t, fmt)


def _cmp_value(num: int, den: int, m: int, e: int, b: int) -> int:
    """Sign of ``num/den - m * b**e``."""
    if e >= 0:
        lhs, rhs = num, den * m * b**e
    else:
        lhs, rhs = num * b**-e, den * m
    return (lhs > rhs) - (lhs < rhs)


def _cmp_half(num: int, den: int, msum: int, e: int, b: int) -> int:
    """Sign of ``num/den - msum * b**e / 2`` (midpoint comparison)."""
    if e >= 0:
        lhs, rhs = 2 * num, den * msum * b**e
    else:
        lhs, rhs = 2 * num * b**-e, den * msum
    return (lhs > rhs) - (lhs < rhs)


def _aligned_sum(lo: Flonum, hi: Flonum, b: int):
    """``(msum, e)`` with ``lo + hi == msum * b**e`` exactly."""
    e = min(lo.e, hi.e)
    return lo.f * b ** (lo.e - e) + hi.f * b ** (hi.e - e), e


def algorithm_r(num: int, den: int, fmt: FloatFormat = BINARY64,
                negative: bool = False) -> Flonum:
    """Correctly rounded (nearest-even) float for the positive ``num/den``.

    Loop invariant (Clinger): the answer is within one step of ``z``.
    Compare ``x`` with ``z``; if beyond the midpoint toward a neighbour,
    step one ulp that way and repeat; otherwise round off and stop.
    """
    if num == 0:
        return Flonum.zero(fmt, 1 if negative else 0)
    if num < 0 or den <= 0:
        raise RangeError("algorithm_r requires a non-negative rational")
    b = fmt.radix
    z = initial_guess(num, den, fmt)
    for _ in range(_MAX_STEPS):
        m, e = z.f, z.e
        cmp_z = _cmp_value(num, den, m, e, b)
        if cmp_z == 0:
            break
        if cmp_z > 0:
            succ = successor(z)
            if succ.is_infinite:
                # Midpoint between the largest finite value and the
                # would-be next: (2m + 1) * b**e / 2.
                cmp_mid = _cmp_half(num, den, 2 * m + 1, e, b)
            else:
                msum, me = _aligned_sum(z, succ, b)
                cmp_mid = _cmp_half(num, den, msum, me, b)
            if cmp_mid < 0:
                break
            if cmp_mid == 0:
                z = z if m % 2 == 0 else succ
                break
            z = succ
            if z.is_infinite:
                break
        else:
            pred = predecessor(z)
            if pred.is_zero:
                # Midpoint between zero and the smallest denormal.
                cmp_mid = _cmp_half(num, den, m, e, b)
            else:
                msum, me = _aligned_sum(pred, z, b)
                cmp_mid = _cmp_half(num, den, msum, me, b)
            if cmp_mid > 0:
                break
            if cmp_mid == 0:
                z = z if m % 2 == 0 else pred
                break
            z = pred
            if z.is_zero:
                break
    else:  # pragma: no cover - seed is within one ulp
        raise AssertionError("AlgorithmR failed to converge")
    if negative and not z.is_nan:
        return z.negate()
    return z


def read_decimal_r(text: str, fmt: FloatFormat = BINARY64) -> Flonum:
    """AlgorithmR-based string reader (nearest-even)."""
    parsed = parse_decimal(text)
    if parsed.special == "nan":
        return Flonum.nan(fmt)
    if parsed.special == "inf":
        return Flonum.infinity(fmt, parsed.sign)
    if parsed.is_zero:
        return Flonum.zero(fmt, parsed.sign)
    num = parsed.digits
    q = parsed.exponent
    den = 1
    if q >= 0:
        num *= 10**q
    else:
        den = 10**-q
    return algorithm_r(num, den, fmt, negative=bool(parsed.sign))
