"""``python -m repro`` entry point."""

from repro.cli import run

if __name__ == "__main__":
    raise SystemExit(run())
