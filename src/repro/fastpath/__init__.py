"""Fast-path printers with exact fallback (the paper's Section-5 thread).

Two heuristic converters over 64-bit fixed-point arithmetic, each of
which either returns a *certified* result or reports failure so the
caller can fall back to the exact algorithms:

* :func:`shortest_fast` — Grisu3-style shortest round-trip digits,
  falling back to :func:`repro.core.dragon.shortest_digits`;
* :func:`fixed_fast` — Gay-style counted-digit conversion, falling back
  to :func:`repro.baselines.naive_fixed.exact_fixed_digits`.

``FastPathStats`` counts hits/misses for the A6 ablation bench.
"""

from __future__ import annotations

from repro.baselines.naive_fixed import exact_fixed_digits
from repro.core.digits import DigitResult
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.fastpath.counted import counted_fixed
from repro.fastpath.diyfp import (
    DiyFp,
    cached_power_for_binary_exponent,
    normalize,
    normalized_boundaries,
)
from repro.fastpath.grisu import grisu_shortest
from repro.floats.model import Flonum

__all__ = [
    "DiyFp",
    "normalize",
    "normalized_boundaries",
    "cached_power_for_binary_exponent",
    "grisu_shortest",
    "counted_fixed",
    "shortest_fast",
    "fixed_fast",
    "STATS",
    "FastPathStats",
]


class FastPathStats:
    """Hit/miss counters for the fast paths."""

    __slots__ = ("shortest_hits", "shortest_misses", "fixed_hits",
                 "fixed_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.shortest_hits = 0
        self.shortest_misses = 0
        self.fixed_hits = 0
        self.fixed_misses = 0


STATS = FastPathStats()


def shortest_fast(v: Flonum, base: int = 10) -> DigitResult:
    """Shortest digits: Grisu3 when certain, exact Burger–Dybvig else.

    The combination is exact: Grisu only returns when its result provably
    equals the exact algorithm's (conservative-reader) output.
    """
    result = grisu_shortest(v, base)
    if result is not None:
        STATS.shortest_hits += 1
        return result
    STATS.shortest_misses += 1
    return shortest_digits(v, base=base, mode=ReaderMode.NEAREST_UNKNOWN)


def fixed_fast(v: Flonum, ndigits: int, base: int = 10) -> DigitResult:
    """``ndigits`` significant digits: counted fast path, exact fallback."""
    result = counted_fixed(v, ndigits, base)
    if result is not None:
        STATS.fixed_hits += 1
        return result
    STATS.fixed_misses += 1
    return exact_fixed_digits(v, ndigits=ndigits, base=base)
