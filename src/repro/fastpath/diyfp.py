"""Do-it-yourself floating point: 64-bit significand, explicit exponent.

The substrate for the fast-path printers (`repro.fastpath.grisu`,
`repro.fastpath.counted`).  A :class:`DiyFp` is ``f * 2**e`` with ``f``
held in exactly 64 bits; multiplication rounds once (the single source
of error the fast paths must account for).

Cached powers of ten are computed *exactly* at first use from Python
integers — correctly rounded to 64 bits — rather than shipped as a
table, and an exactness flag records whether the power was exact
(|k| <= 27 or so), which tightens the error bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import RangeError
from repro.floats.model import Flonum

__all__ = [
    "DiyFp",
    "SIGNIFICAND_SIZE",
    "normalize",
    "normalized_boundaries",
    "cached_power_for_binary_exponent",
    "clear_power_cache",
]

SIGNIFICAND_SIZE = 64
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class DiyFp:
    """``f * 2**e`` with ``0 <= f < 2**64`` (normalized: top bit set)."""

    f: int
    e: int

    def times(self, other: "DiyFp") -> "DiyFp":
        """Rounded 64x64→64 multiplication (one half-ulp error)."""
        rounded = (self.f * other.f + (1 << 63)) >> 64
        e = self.e + other.e + 64
        if rounded > _MASK64:  # pragma: no cover - cannot occur for 64-bit f
            rounded >>= 1
            e += 1
        return DiyFp(rounded, e)

    def minus(self, other: "DiyFp") -> "DiyFp":
        """Subtraction; exponents must match, result non-negative."""
        if self.e != other.e or self.f < other.f:
            raise RangeError("DiyFp.minus needs aligned, ordered operands")
        return DiyFp(self.f - other.f, self.e)

    def to_fraction(self):
        from fractions import Fraction

        return Fraction(self.f) * Fraction(2) ** self.e


def normalize(f: int, e: int) -> DiyFp:
    """Shift so the top of the 64-bit significand is set."""
    if f <= 0:
        raise RangeError("normalize requires a positive significand")
    shift = SIGNIFICAND_SIZE - f.bit_length()
    return DiyFp(f << shift, e - shift)


def normalized_boundaries(v: Flonum) -> Tuple[DiyFp, DiyFp]:
    """``(m-, m+)``: the rounding-range midpoints, at m+'s exponent.

    Mirrors the paper's Section 2.1 gap analysis: the lower gap is
    narrower by one radix step when the mantissa sits on a power
    boundary (and the exponent is not minimal).
    """
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("boundaries need a positive finite value")
    f, e = v.f, v.e
    plus = normalize((f << 1) + 1, e - 1)
    if f == v.fmt.hidden_limit and e > v.fmt.min_e:
        minus = DiyFp((f << 2) - 1, e - 2)
    else:
        minus = DiyFp((f << 1) - 1, e - 1)
    # Align minus to plus's exponent.
    minus = DiyFp(minus.f << (minus.e - plus.e), plus.e)
    return minus, plus


# ----------------------------------------------------------------------
# Cached powers of ten.
# ----------------------------------------------------------------------

_POWER_CACHE: Dict[int, Tuple[DiyFp, bool]] = {}

_LOG10_2 = math.log10(2.0)


def _pow10_diyfp(k: int) -> Tuple[DiyFp, bool]:
    """``10**k`` correctly rounded to a normalized DiyFp, plus exactness."""
    got = _POWER_CACHE.get(k)
    if got is not None:
        return got
    if k >= 0:
        value = 10**k
        bits = value.bit_length()
        shift = bits - 64
        if shift <= 0:
            result = (DiyFp(value << -shift, shift), True)
        else:
            truncated = value >> shift
            rest = value & ((1 << shift) - 1)
            half = 1 << (shift - 1)
            f = truncated + (1 if rest > half or
                             (rest == half and truncated & 1) else 0)
            e = shift
            if f == 1 << 64:
                f >>= 1
                e += 1
            result = (DiyFp(f, e), rest == 0)
    else:
        den = 10**-k
        # Choose s so 2**s // den lands in [2**63, 2**64).
        s = 63 + den.bit_length()
        q, rest = divmod(1 << s, den)
        if q >= 1 << 64:
            s -= 1
            q, rest = divmod(1 << s, den)
        elif q < 1 << 63:  # pragma: no cover - bit-length bound prevents it
            s += 1
            q, rest = divmod(1 << s, den)
        double_rest = 2 * rest
        if double_rest > den or (double_rest == den and q & 1):
            q += 1
            if q == 1 << 64:
                q >>= 1
                s -= 1
        result = (DiyFp(q, -s), False)
    _POWER_CACHE[k] = result
    return result


def clear_power_cache() -> None:
    """Drop every cached power of ten.

    The powers are recomputed exactly on demand, so this only affects
    speed — it exists so cold-start measurements (``bench warm``) can
    reproduce what a fresh process pays, which ``clear_tables`` alone
    does not (this cache backs the table build *and* the per-value
    Grisu fast path).
    """
    _POWER_CACHE.clear()


def cached_power_for_binary_exponent(e: int, target_lo: int = -60,
                                     target_hi: int = -32
                                     ) -> Tuple[DiyFp, int, bool]:
    """A power ``10**-k`` whose product with a DiyFp of exponent ``e``
    lands the result exponent in ``[target_lo, target_hi]``.

    Returns ``(power, k, exact)`` with the decimal exponent ``k`` such
    that ``power ≈ 10**-k``.  The window is 28 binary ≈ 8.4 decimal
    orders wide, so the estimate needs at most one adjustment.
    """
    # Result exponent: e + e_c + 64 must land in the window, so the
    # power's own exponent e_c must lie in [target_lo-64-e, target_hi-64-e].
    # For 10**m normalized to 64 bits, e_c(m) = floor(m*log2(10)) - 63.
    m = math.ceil((target_lo - 64 - e + 63) * _LOG10_2)
    for _ in range(8):
        power, exact = _pow10_diyfp(m)
        result_e = e + power.e + 64
        if result_e < target_lo:
            m += 1
        elif result_e > target_hi:
            m -= 1
        else:
            return power, -m, exact
    raise AssertionError(  # pragma: no cover - window is wide enough
        "cached power selection failed to converge")
