"""Grisu3-style shortest-output fast path with exactness detection.

The follow-on work the paper seeded: generate the shortest round-trip
digits using only 64-bit fixed-point arithmetic (Loitsch, PLDI 2010),
*detecting* the rare inputs whose rounding decision is too close to call
at 64 bits and bailing out to the exact Burger–Dybvig algorithm.  The
port follows the double-conversion reference structure (DigitGen +
RoundWeed) over Python ints.

Success semantics: when :func:`grisu_shortest` returns a result it
equals the exact algorithm's output under *both* the conservative and
the IEEE nearest-even reader assumptions (boundary-sensitive inputs like
``1e23`` are exactly the ones that bail) — a property the test suite
checks across corpora.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.digits import DigitResult
from repro.errors import RangeError
from repro.fastpath.diyfp import (
    DiyFp,
    cached_power_for_binary_exponent,
    normalize,
    normalized_boundaries,
)
from repro.floats.model import Flonum

__all__ = ["grisu_shortest"]

_MASK64 = (1 << 64) - 1

_POWERS_OF_TEN = [10**i for i in range(20)]


def _biggest_power_ten(number: int) -> Tuple[int, int]:
    """Largest power of ten <= number: ``(power, exponent_plus_one)``."""
    if number == 0:
        return 1, 1
    exponent = len(str(number)) - 1
    return _POWERS_OF_TEN[exponent], exponent + 1


def _round_weed(buffer: List[int], distance_too_high_w: int,
                unsafe_interval: int, rest: int, ten_kappa: int,
                unit: int) -> bool:
    """Nudge the last digit toward w and certify unambiguity.

    Port of double-conversion's RoundWeed: ``rest`` measures
    ``too_high - V`` in scaled units; decrement the last digit while a
    step of ``ten_kappa`` keeps V above the lower bound and moves it
    closer to w; then fail if, within the ±unit error bars, a different
    digit could have been correct.
    """
    small_distance = distance_too_high_w - unit
    big_distance = distance_too_high_w + unit
    while (rest < small_distance
           and unsafe_interval - rest >= ten_kappa
           and (rest + ten_kappa < small_distance
                or (small_distance - rest
                    >= rest + ten_kappa - small_distance))):
        buffer[-1] -= 1
        rest += ten_kappa
    # Ambiguity check: could the *other* choice be the right one?
    if (rest < big_distance
            and unsafe_interval - rest >= ten_kappa
            and (rest + ten_kappa < big_distance
                 or big_distance - rest > rest + ten_kappa - big_distance)):
        return False
    return 2 * unit <= rest <= unsafe_interval - 4 * unit


def _digit_gen(low: DiyFp, w: DiyFp, high: DiyFp
               ) -> Optional[Tuple[List[int], int]]:
    """Generate the shortest digits of some value in (low, high).

    Returns ``(digits, kappa)`` or None when 64 bits cannot decide.
    """
    unit = 1
    too_low = DiyFp(low.f - unit, low.e)
    too_high = DiyFp(high.f + unit, high.e)
    unsafe_interval = too_high.f - too_low.f
    one_e = -w.e
    one_f = 1 << one_e
    integrals = too_high.f >> one_e
    fractionals = too_high.f & (one_f - 1)
    divisor, kappa = _biggest_power_ten(integrals)
    buffer: List[int] = []

    while kappa > 0:
        digit, integrals = divmod(integrals, divisor)
        buffer.append(digit)
        kappa -= 1
        rest = (integrals << one_e) + fractionals
        if rest < unsafe_interval:
            ok = _round_weed(buffer, (too_high.f - w.f), unsafe_interval,
                             rest, divisor << one_e, unit)
            return (buffer, kappa) if ok else None
        divisor //= 10

    while True:
        fractionals *= 10
        unit *= 10
        unsafe_interval *= 10
        digit = fractionals >> one_e
        buffer.append(digit)
        fractionals &= one_f - 1
        kappa -= 1
        if fractionals < unsafe_interval:
            ok = _round_weed(buffer, (too_high.f - w.f) * unit,
                             unsafe_interval, fractionals, one_f, unit)
            return (buffer, kappa) if ok else None


def grisu_shortest(v: Flonum, base: int = 10) -> Optional[DigitResult]:
    """Shortest digits of ``v`` via 64-bit arithmetic, or None to bail.

    Only decimal output and radix-2 formats up to 64-bit significands
    are eligible; everything else bails immediately (the exact algorithm
    handles it).
    """
    if base != 10:
        return None
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("grisu_shortest requires a positive finite value")
    if v.fmt.radix != 2 or v.fmt.precision > 62:
        return None
    w = normalize(v.f, v.e)
    low, high = normalized_boundaries(v)
    power, mk, _exact = cached_power_for_binary_exponent(w.e)
    scaled_w = w.times(power)
    scaled_low = low.times(power)
    scaled_high = high.times(power)
    generated = _digit_gen(scaled_low, scaled_w, scaled_high)
    if generated is None:
        return None
    digits, kappa = generated
    # Leading zeros cannot appear (first digit of too_high's integral
    # part); trailing bookkeeping: value = digits x 10**(mk + kappa).
    k = mk + kappa + len(digits)
    return DigitResult(k=k, digits=tuple(digits), base=10)
