"""Counted-digit fast path — Gay's fixed-format heuristic, modernized.

The paper's Section 5: "Gay showed that floating-point arithmetic is
sufficiently accurate in most cases when the requested number of digits
is small; the fixed-format printing algorithm described in this paper is
useful when these heuristics fail."  This module is that heuristic in
its modern form (double-conversion's counted DigitGen): produce exactly
``n`` significant digits from a 64-bit scaled significand, tracking the
accumulated error, and *report failure* whenever the final rounding is
not provably correct — the caller then falls back to the exact
converter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.digits import DigitResult
from repro.errors import RangeError
from repro.fastpath.diyfp import cached_power_for_binary_exponent, normalize
from repro.fastpath.grisu import _biggest_power_ten
from repro.floats.model import Flonum

__all__ = ["counted_fixed"]


def _round_weed_counted(buffer: List[int], rest: int, ten_kappa: int,
                        unit: int) -> Optional[int]:
    """Round the last digit on ``rest``/``ten_kappa``, or None if unsure.

    Returns the kappa adjustment (0, or +1 when a carry ripples past the
    first digit).  ``unit`` is the accumulated error in the same scale.
    """
    if unit >= ten_kappa:
        return None  # error swamps the digit position entirely
    if ten_kappa - unit <= unit:
        return None
    # Safely round down?
    if ten_kappa - rest > rest and ten_kappa - 2 * rest >= 2 * unit:
        return 0
    # Safely round up?
    if rest > unit and ten_kappa - (rest - unit) <= rest - unit:
        i = len(buffer) - 1
        buffer[i] += 1
        while i > 0 and buffer[i] == 10:
            buffer[i] = 0
            buffer[i - 1] += 1
            i -= 1
        if buffer[0] == 10:
            buffer[0] = 1
            for j in range(1, len(buffer)):
                buffer[j] = 0
            return 1
        return 0
    return None


def _digit_gen_counted(w_f: int, w_e: int, requested: int
                       ) -> Optional[Tuple[List[int], int]]:
    """``requested`` digits of ``w = w_f * 2**w_e``, or None if unsure."""
    unit = 1
    one_e = -w_e
    one_f = 1 << one_e
    integrals = w_f >> one_e
    fractionals = w_f & (one_f - 1)
    divisor, kappa = _biggest_power_ten(integrals)
    buffer: List[int] = []

    while kappa > 0:
        digit, integrals = divmod(integrals, divisor)
        buffer.append(digit)
        requested -= 1
        kappa -= 1
        if requested == 0:
            break
        divisor //= 10

    if requested == 0:
        rest = (integrals << one_e) + fractionals
        adjust = _round_weed_counted(buffer, rest, divisor << one_e, unit)
        if adjust is None:
            return None
        return buffer, kappa + adjust

    while requested > 0:
        fractionals *= 10
        unit *= 10
        digit = fractionals >> one_e
        buffer.append(digit)
        fractionals &= one_f - 1
        requested -= 1
        kappa -= 1

    adjust = _round_weed_counted(buffer, fractionals, one_f, unit)
    if adjust is None:
        return None
    return buffer, kappa + adjust


def counted_fixed(v: Flonum, ndigits: int, base: int = 10
                  ) -> Optional[DigitResult]:
    """``ndigits`` significant digits of ``v`` via 64-bit arithmetic.

    Returns None (caller falls back to the exact converter) when the
    request is out of the heuristic's certainty range — too many digits
    for the error budget, a near-tie, or a non-decimal/oversized format.
    Leading zeros produced by a downward-crossing first digit are also
    treated as failures for simplicity.
    """
    if base != 10 or ndigits < 1:
        return None
    if not v.is_finite or v.sign or v.is_zero:
        raise RangeError("counted_fixed requires a positive finite value")
    if v.fmt.radix != 2 or v.fmt.precision > 62:
        return None
    if ndigits > 17:
        return None  # 64 bits can never certify more
    w = normalize(v.f, v.e)
    power, mk, _exact = cached_power_for_binary_exponent(w.e)
    scaled = w.times(power)
    generated = _digit_gen_counted(scaled.f, scaled.e, ndigits)
    if generated is None:
        return None
    digits, kappa = generated
    if digits[0] == 0:
        return None
    k = mk + kappa + len(digits)
    return DigitResult(k=k, digits=tuple(digits), base=10)
