"""Regenerate BENCH_serve.json — the serving daemon's latency SLOs.

Run:  PYTHONPATH=src python tools/bench_serve.py [--quick] [-o PATH]

An open-loop load generator against a loopback
:class:`~repro.serve.daemon.ReproDaemon`: request arrivals are Poisson
(``--rate`` per second, arrival times drawn up front, latency measured
from the *scheduled* arrival so queueing is charged to the daemon, not
hidden by a closed feedback loop), payloads carry zipf key-skewed
columns from :mod:`repro.workloads.corpus`, and every response is
checked byte for byte against the in-process
``format_bulk``/``read_bulk`` oracle.

Two legs land in the JSON:

* **baseline** — fault-free traffic; gates on p50/p95/p99 latency,
  throughput, zero typed errors and zero byte mismatches;
* **chaos** (skipped by ``--no-chaos``) — the same open-loop traffic
  with a :class:`~repro.faults.FaultPlan` armed that crashes, stalls
  and corrupts pool shards mid-flight (one guaranteed crash plus
  rate-drawn faults).  Gates: at least one fault fired, recovery
  counters account for every fired fault, zero byte mismatches, and
  p99 degradation stays within the documented bound
  (``chaos p99 <= max(P99_RATIO_BOUND x baseline p99,
  P99_ABS_FLOOR_MS)`` — see docs/serving.md);

* **controlled** (with the chaos leg) — the *same* fault plan replayed
  against a daemon with the self-healing control plane armed: circuit
  breakers, the AIMD admission controller and hedged shard dispatch
  (``hedge_under_faults`` so the hedge legs dodge the armed stalls —
  exactly the production story).  Gates: zero byte mismatches, a
  bounded shed rate, and on full runs the controlled chaos p99 must
  not exceed ``CONTROLLED_P99_BOUND`` x the uncontrolled chaos p99 —
  the control plane has to pay for itself.

Timing gates are skipped on ``--quick`` so loaded CI machines cannot
flake the smoke lane; identity/accounting gates always apply.  The
output schema is pinned by :data:`BENCH_SERVE_SCHEMA` and covered by
``tests/test_tools.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.engine.bulk import (  # noqa: E402
    format_bulk,
    ingest_bits,
    pack_bits,
    read_bulk,
)
from repro.errors import ReproError  # noqa: E402
from repro.floats.formats import STANDARD_FORMATS  # noqa: E402
from repro.serve.client import AsyncServeClient  # noqa: E402
from repro.serve.daemon import serving  # noqa: E402
from repro.workloads.corpus import zipf_random  # noqa: E402

#: Chaos p99 may be at most this multiple of the baseline p99 ...
P99_RATIO_BOUND = 20.0
#: ... or this absolute floor, whichever is larger (retry/rebuild cost
#: on a short, fast baseline would otherwise dominate the ratio).
P99_ABS_FLOOR_MS = 500.0
#: The controlled leg's p99 may be at most this multiple of the
#: uncontrolled chaos p99 (full runs only) — the control plane must
#: improve tail latency under faults, not merely add machinery.
CONTROLLED_P99_BOUND = 1.0
#: The controlled leg may shed at most this fraction of its requests.
CONTROLLED_SHED_BOUND = 0.2

#: Required keys of BENCH_serve.json.  A value of ``dict`` means "any
#: mapping"; a tuple lists required sub-keys.  Schema changes must
#: update this and tests/test_tools.py.
BENCH_SERVE_SCHEMA = {
    "config": ("rate", "duration", "connections", "rows_per_request",
               "formats", "zipf_s", "distinct", "seed", "jobs", "kind",
               "quick"),
    "baseline": {
        "requests": int,
        "responses": int,
        "errors": int,
        "mismatches": int,
        "latency_ms": ("p50", "p95", "p99", "mean", "max"),
        "throughput": ("requests_per_s", "mb_per_s"),
        "stats": dict,
        "pool_stats": dict,
    },
    "chaos": {
        "requests": int,
        "responses": int,
        "errors": int,
        "mismatches": int,
        "faults_fired": int,
        "recovered": int,
        "p99_ratio": float,
        "latency_ms": ("p50", "p95", "p99", "mean", "max"),
        "throughput": ("requests_per_s", "mb_per_s"),
        "stats": dict,
        "pool_stats": dict,
    },
    "controlled": {
        "requests": int,
        "responses": int,
        "errors": int,
        "mismatches": int,
        "faults_fired": int,
        "p99_vs_chaos": float,
        "control": ("breaker_trips", "breaker_sheds", "admission_sheds",
                    "admission_increases", "admission_decreases",
                    "hedges", "hedge_wins"),
        "latency_ms": ("p50", "p95", "p99", "mean", "max"),
        "throughput": ("requests_per_s", "mb_per_s"),
        "stats": dict,
        "pool_stats": dict,
    },
    "gates": ("p99_ratio_bound", "p99_abs_floor_ms",
              "controlled_p99_bound", "controlled_shed_bound"),
}


def validate_bench_schema(result: dict, schema: dict = None,
                          path: str = "") -> list:
    """Return a list of schema violations (empty when conformant)."""
    schema = BENCH_SERVE_SCHEMA if schema is None else schema
    problems = []
    for key, spec in schema.items():
        where = f"{path}{key}"
        if key not in result:
            problems.append(f"missing key: {where}")
            continue
        value = result[key]
        if isinstance(spec, dict):
            if not isinstance(value, dict):
                problems.append(f"not a mapping: {where}")
            else:
                problems.extend(
                    validate_bench_schema(value, spec, f"{where}."))
        elif isinstance(spec, tuple):
            if not isinstance(value, dict):
                problems.append(f"not a mapping: {where}")
            else:
                for sub in spec:
                    if sub not in value:
                        problems.append(f"missing key: {where}.{sub}")
        elif spec is float:
            if not isinstance(value, (int, float)):
                problems.append(f"not a number: {where}")
        elif spec is int:
            if not isinstance(value, int):
                problems.append(f"not an int: {where}")
        elif spec is list:
            if not isinstance(value, list):
                problems.append(f"not a list: {where}")
        elif spec is dict:
            if not isinstance(value, dict):
                problems.append(f"not a mapping: {where}")
    return problems


def percentile(xs, q: float) -> float:
    """Nearest-rank percentile of a sorted list (0.0 when empty)."""
    if not xs:
        return 0.0
    k = min(len(xs) - 1, max(0, math.ceil(q / 100.0 * len(xs)) - 1))
    return xs[k]


# ----------------------------------------------------------------------
# Workload templates: zipf key-skewed byte planes with oracles
# ----------------------------------------------------------------------

def build_templates(formats, rows_per_request: int, distinct: int,
                    zipf_s: float, seed: int, templates_per_fmt: int):
    """Pre-draw request payloads and their in-process oracle responses.

    Each template is ``(op, fmt_name, payload, want, bytes_moved)``;
    the zipf skew lives in the *values* (hot keys repeat across and
    within requests, exactly the dedup-friendly traffic the interning
    layer is built for).
    """
    eng = Engine()
    templates = []
    for fmt_name in formats:
        fmt = STANDARD_FORMATS[fmt_name]
        values = zipf_random(rows_per_request * templates_per_fmt,
                             distinct=distinct, s=zipf_s, fmt=fmt,
                             seed=seed, signed=True)
        bits = [v.to_bits() for v in values]
        for t in range(templates_per_fmt):
            chunk = bits[t * rows_per_request:(t + 1) * rows_per_request]
            packed = pack_bits(chunk, fmt)
            plane = format_bulk(packed, fmt, engine=eng)
            want_bits = pack_bits(read_bulk(plane, fmt, engine=eng), fmt)
            templates.append(("format", fmt_name, packed, plane,
                              len(packed) + len(plane)))
            templates.append(("read", fmt_name, plane, want_bits,
                              len(plane) + len(want_bits)))
    return templates


# ----------------------------------------------------------------------
# The open-loop driver
# ----------------------------------------------------------------------

async def _drive(daemon, templates, rate: float, duration: float,
                 connections: int, seed: int) -> dict:
    loop = asyncio.get_running_loop()
    rng = random.Random(seed ^ 0xA221)
    clients = [await AsyncServeClient.connect(daemon.host, daemon.port)
               for _ in range(connections)]
    # Draw the whole arrival schedule up front: open-loop means the
    # generator never waits for a response before sending the next
    # request, so server-side queueing shows up as latency.
    arrivals = []
    t = 0.0
    while t < duration:
        t += rng.expovariate(rate)
        arrivals.append(t)
    picks = [rng.randrange(len(templates)) for _ in arrivals]

    latencies = []
    errors = 0
    mismatches = 0
    bytes_moved = 0

    async def fire(at: float, template, client) -> None:
        nonlocal errors, mismatches, bytes_moved
        delay = at - (loop.time() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        op, fmt_name, payload, want, moved = template
        sched = t0 + at
        try:
            if op == "format":
                got = await client.format(payload, fmt_name)
            else:
                got = await client.read(payload, fmt_name)
        except ReproError:
            errors += 1
            latencies.append(loop.time() - sched)
            return
        latencies.append(loop.time() - sched)
        bytes_moved += moved
        if got != want:
            mismatches += 1

    t0 = loop.time()
    tasks = [asyncio.ensure_future(
        fire(at, templates[pick], clients[i % connections]))
        for i, (at, pick) in enumerate(zip(arrivals, picks))]
    await asyncio.gather(*tasks)
    elapsed = loop.time() - t0
    for c in clients:
        await c.close()

    latencies.sort()
    ms = [x * 1000.0 for x in latencies]
    return {
        "requests": len(arrivals),
        "responses": len(latencies) - errors,
        "errors": errors,
        "mismatches": mismatches,
        "latency_ms": {
            "p50": round(percentile(ms, 50), 3),
            "p95": round(percentile(ms, 95), 3),
            "p99": round(percentile(ms, 99), 3),
            "mean": round(sum(ms) / len(ms), 3) if ms else 0.0,
            "max": round(ms[-1], 3) if ms else 0.0,
        },
        "throughput": {
            "requests_per_s": round(len(latencies) / elapsed, 1),
            "mb_per_s": round(bytes_moved / elapsed / 1e6, 2),
        },
    }


def run_leg(templates, *, rate, duration, connections, seed, jobs, kind,
            plan=None, **daemon_kw) -> dict:
    """One serving leg: boot a daemon, drive open-loop traffic at it,
    return the measured section (with daemon counters attached).
    Extra keyword arguments reach the daemon — the controlled leg uses
    them to arm the control plane."""
    with serving(jobs=jobs, kind=kind, batch_window=0.001,
                 retries=3, **daemon_kw) as daemon:
        ctx = faults.armed(plan) if plan is not None else None
        try:
            if ctx is not None:
                ctx.__enter__()
            section = asyncio.run(_drive(daemon, templates, rate,
                                         duration, connections, seed))
        finally:
            if ctx is not None:
                ctx.__exit__(None, None, None)
        section["stats"] = daemon.stats()
        section["pool_stats"] = daemon.pool_stats()
    return section


def chaos_plan(seed: int) -> faults.FaultPlan:
    """The chaos leg's plan: one guaranteed worker crash, then
    rate-drawn crashes, stalls and corruptions for the whole run."""
    return faults.FaultPlan([
        faults.FaultSpec("pool.format_shard", "crash", shard=0,
                         attempt=0, limit=1),
        faults.FaultSpec("pool.format_shard", "crash", rate=0.02,
                         attempt=0, limit=5),
        faults.FaultSpec("pool.read_shard", "corrupt", rate=0.02,
                         attempt=0, limit=5),
        faults.FaultSpec("pool.read_shard", "stall", rate=0.01,
                         attempt=0, stall=0.05, limit=5),
    ], seed=seed)


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------

def _check_baseline_gates(base: dict, quick: bool) -> int:
    """Identity and accounting always; latency only on full runs."""
    status = 0
    if base["mismatches"]:
        print("FAIL: baseline responses mismatch the in-process oracle",
              file=sys.stderr)
        status = 1
    if base["errors"]:
        print(f"FAIL: {base['errors']} typed errors under fault-free "
              "traffic", file=sys.stderr)
        status = 1
    if base["responses"] + base["errors"] != base["requests"]:
        print("FAIL: baseline responses unaccounted for",
              file=sys.stderr)
        status = 1
    if not quick and base["latency_ms"]["p99"] > 250.0:
        print(f"FAIL: baseline p99 {base['latency_ms']['p99']}ms "
              "over the 250ms SLO", file=sys.stderr)
        status = 1
    return status


def _check_chaos_gates(chaos: dict, base: dict, quick: bool) -> int:
    """Chaos must fire, heal byte-identically, account for every
    fault, and keep p99 degradation inside the documented bound."""
    status = 0
    if chaos["mismatches"]:
        print("FAIL: chaos responses mismatch the fault-free oracle",
              file=sys.stderr)
        status = 1
    if chaos["faults_fired"] < 1:
        print("FAIL: dead chaos leg — no fault fired", file=sys.stderr)
        status = 1
    if chaos["recovered"] < chaos["faults_fired"]:
        print(f"FAIL: {chaos['faults_fired']} faults fired but only "
              f"{chaos['recovered']} recoveries counted",
              file=sys.stderr)
        status = 1
    if chaos["responses"] + chaos["errors"] != chaos["requests"]:
        print("FAIL: chaos responses unaccounted for", file=sys.stderr)
        status = 1
    if not quick:
        bound = max(P99_RATIO_BOUND * base["latency_ms"]["p99"],
                    P99_ABS_FLOOR_MS)
        if chaos["latency_ms"]["p99"] > bound:
            print(f"FAIL: chaos p99 {chaos['latency_ms']['p99']}ms "
                  f"exceeds the degradation bound {bound:.0f}ms",
                  file=sys.stderr)
            status = 1
    return status


def _check_controlled_gates(ctl: dict, chaos: dict, quick: bool) -> int:
    """The control plane may shed or reroute, never change a byte —
    and on full runs it must improve the chaos tail, not just exist."""
    status = 0
    if ctl["mismatches"]:
        print("FAIL: controlled responses mismatch the fault-free "
              "oracle", file=sys.stderr)
        status = 1
    if ctl["responses"] + ctl["errors"] != ctl["requests"]:
        print("FAIL: controlled responses unaccounted for",
              file=sys.stderr)
        status = 1
    if ctl["errors"] > ctl["requests"] * CONTROLLED_SHED_BOUND:
        print(f"FAIL: controlled leg shed {ctl['errors']} of "
              f"{ctl['requests']} requests (bound "
              f"{CONTROLLED_SHED_BOUND:.0%})", file=sys.stderr)
        status = 1
    if not quick:
        bound = CONTROLLED_P99_BOUND * chaos["latency_ms"]["p99"]
        if ctl["latency_ms"]["p99"] > bound:
            print(f"FAIL: controlled p99 {ctl['latency_ms']['p99']}ms "
                  f"does not beat the uncontrolled chaos p99 "
                  f"{chaos['latency_ms']['p99']}ms "
                  f"(bound {bound:.0f}ms)", file=sys.stderr)
            status = 1
    return status


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=400.0,
                        help="open-loop arrival rate, requests/s")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="seconds of traffic per leg")
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--rows", type=int, default=64, metavar="N",
                        help="rows per request payload")
    parser.add_argument("--formats", nargs="*",
                        default=["binary16", "binary32", "binary64"],
                        choices=sorted(STANDARD_FORMATS))
    parser.add_argument("--zipf-s", type=float, default=1.3)
    parser.add_argument("--distinct", type=int, default=512,
                        help="distinct keys under the zipf skew")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--jobs", type=int, default=2,
                        help="BulkPool workers per (format, delimiter)")
    parser.add_argument("--kind", default="process",
                        choices=["thread", "process"])
    parser.add_argument("--quick", action="store_true",
                        help="short legs, identity gates only (CI smoke)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the chaos leg")
    parser.add_argument("--chaos", action="store_true",
                        help="accepted for symmetry; the chaos leg runs "
                             "by default")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    args = parser.parse_args(argv)

    rate = 150.0 if args.quick else args.rate
    duration = 2.0 if args.quick else args.duration
    templates = build_templates(
        args.formats, args.rows, args.distinct, args.zipf_s, args.seed,
        templates_per_fmt=4 if args.quick else 16)

    result = {
        "generated_by": "tools/bench_serve.py",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "rate": rate, "duration": duration,
            "connections": args.connections,
            "rows_per_request": args.rows, "formats": args.formats,
            "zipf_s": args.zipf_s, "distinct": args.distinct,
            "seed": args.seed, "jobs": args.jobs, "kind": args.kind,
            "quick": args.quick,
        },
        "gates": {"p99_ratio_bound": P99_RATIO_BOUND,
                  "p99_abs_floor_ms": P99_ABS_FLOOR_MS,
                  "controlled_p99_bound": CONTROLLED_P99_BOUND,
                  "controlled_shed_bound": CONTROLLED_SHED_BOUND},
    }

    base = run_leg(templates, rate=rate, duration=duration,
                   connections=args.connections, seed=args.seed,
                   jobs=args.jobs, kind=args.kind)
    result["baseline"] = base
    status = _check_baseline_gates(base, quick=args.quick)

    if not args.no_chaos:
        plan = chaos_plan(args.seed)
        chaos = run_leg(templates, rate=rate, duration=duration,
                        connections=args.connections, seed=args.seed + 1,
                        jobs=args.jobs, kind=args.kind, plan=plan)
        with plan._lock:
            fired = sum(plan.fired.get(s, 0) for s in faults.POOL_SITES)
        pool = chaos["pool_stats"]
        chaos["faults_fired"] = fired
        chaos["recovered"] = (pool.get("shard_failures", 0)
                              + pool.get("corrupt_shards", 0)
                              + pool.get("deadline_hits", 0))
        p99 = base["latency_ms"]["p99"]
        chaos["p99_ratio"] = (round(chaos["latency_ms"]["p99"] / p99, 2)
                              if p99 else 0.0)
        result["chaos"] = chaos
        status = _check_chaos_gates(chaos, base,
                                    quick=args.quick) or status

        # The controlled leg: the same fault plan (fresh instance, same
        # seed and arrival schedule) with the control plane armed.
        cplan = chaos_plan(args.seed)
        ctl = run_leg(templates, rate=rate, duration=duration,
                      connections=args.connections, seed=args.seed + 1,
                      jobs=args.jobs, kind=args.kind, plan=cplan,
                      breaker_threshold=8, slo_target_ms=60.0,
                      hedge=True, hedge_min=0.05,
                      hedge_under_faults=True)
        with cplan._lock:
            cfired = sum(cplan.fired.get(s, 0)
                         for s in faults.POOL_SITES)
        ctl["faults_fired"] = cfired
        cstats, cpool = ctl["stats"], ctl["pool_stats"]
        ctl["control"] = {
            "breaker_trips": cstats.get("breaker_trips", 0),
            "breaker_sheds": cstats.get("breaker_sheds", 0),
            "admission_sheds": cstats.get("admission_sheds", 0),
            "admission_increases": cstats.get("admission_increases", 0),
            "admission_decreases": cstats.get("admission_decreases", 0),
            "hedges": cpool.get("hedges", 0),
            "hedge_wins": cpool.get("hedge_wins", 0),
        }
        cp99 = chaos["latency_ms"]["p99"]
        ctl["p99_vs_chaos"] = (round(ctl["latency_ms"]["p99"] / cp99, 2)
                               if cp99 else 0.0)
        result["controlled"] = ctl
        status = _check_controlled_gates(ctl, chaos,
                                         quick=args.quick) or status

    problems = validate_bench_schema(result) if not args.no_chaos else []
    for p in problems:
        print(f"FAIL: schema violation: {p}", file=sys.stderr)
        status = 1

    text = json.dumps(result, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    for leg in ("baseline", "chaos", "controlled"):
        if leg in result:
            lat = result[leg]["latency_ms"]
            thr = result[leg]["throughput"]
            print(f"{leg}: p50={lat['p50']}ms p95={lat['p95']}ms "
                  f"p99={lat['p99']}ms "
                  f"{thr['requests_per_s']} req/s "
                  f"{thr['mb_per_s']} MB/s "
                  f"mismatches={result[leg]['mismatches']}",
                  file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
