"""Build a warm-start snapshot — tables + memo + hot dictionary.

Run:  PYTHONPATH=src python tools/warm_snapshot.py -o warm.snap

Plays a zipf-shaped corpus (the serving workload shape: a small hot
working set under a long tail) through a donor engine for each selected
format, then captures:

* the precomputed :class:`~repro.engine.tables.FormatTables` (the
  Grisu power-of-ten cache — the dominant cold-start cost),
* the donor's memo contents (write and read directions), and
* a hot-values dictionary: exact shortest results for the ``--hot``
  most frequent corpus values, published to workers through a
  shared-memory plane by :class:`~repro.serve.pool.BulkPool`.

The output is the versioned, CRC-checksummed container of
:mod:`repro.engine.snapshot`; consumers (``Engine(snapshot=...)``,
``BulkPool(snapshot=...)``, ``repro-print --snapshot``) reject corrupt
or stale files and fall back to a cold start, so a snapshot can never
change output bytes — only skip work.
"""

from __future__ import annotations

import argparse
import collections
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.engine import Engine  # noqa: E402
from repro.engine.snapshot import (  # noqa: E402
    build_snapshot,
    hot_entries,
    save_snapshot,
)
from repro.floats.formats import STANDARD_FORMATS  # noqa: E402
from repro.workloads.corpus import zipf_random  # noqa: E402

DEFAULT_FORMATS = ("binary16", "binary32", "binary64")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-o", "--output", default="warm.snap",
                        help="snapshot path (default warm.snap)")
    parser.add_argument("--formats", nargs="+", default=None,
                        metavar="NAME", choices=sorted(STANDARD_FORMATS),
                        help="formats to snapshot tables for "
                             f"(default: {' '.join(DEFAULT_FORMATS)})")
    parser.add_argument("--hot", type=int, default=512, metavar="N",
                        help="hot-dictionary size per format: the N "
                             "most frequent corpus values (default 512)")
    parser.add_argument("--corpus-n", type=int, default=20000,
                        help="warm-up corpus size per format "
                             "(default 20000)")
    parser.add_argument("--distinct", type=int, default=2000,
                        help="distinct values in the corpus "
                             "(default 2000)")
    parser.add_argument("--zipf-s", type=float, default=1.3,
                        help="zipf skew of the corpus (default 1.3)")
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args(argv)

    names = list(args.formats or DEFAULT_FORMATS)
    if args.hot < 0 or args.corpus_n < 1 or args.distinct < 1:
        parser.error("--hot must be >= 0, --corpus-n/--distinct >= 1")

    engine = Engine()
    hot_rows: list = []
    for name in names:
        fmt = STANDARD_FORMATS[name]
        if not fmt.has_encoding:
            print(f"note: {name} has no bit encoding; tables only")
            continue
        vals = zipf_random(args.corpus_n, args.distinct, s=args.zipf_s,
                           fmt=fmt, seed=args.seed, signed=True)
        # Warm the donor memo with the full corpus (read side too, so
        # the snapshot carries both directions), then freeze the head
        # of the frequency distribution into the hot dictionary.
        texts = engine.format_many(vals, fmt=fmt)
        engine.reader.read_many(texts[:args.distinct], fmt)
        head = [v for v, _ in
                collections.Counter(vals).most_common(args.hot)]
        hot_rows.extend(hot_entries(head, engine=engine))

    snap = build_snapshot(names, engine=engine, hot=hot_rows,
                          meta={"tool": "tools/warm_snapshot.py",
                                "corpus_n": args.corpus_n,
                                "distinct": args.distinct,
                                "zipf_s": args.zipf_s,
                                "seed": args.seed})
    save_snapshot(snap, args.output)
    size = os.path.getsize(args.output)
    print(f"wrote {os.path.abspath(args.output)} ({size} bytes): "
          f"formats={','.join(names)} "
          f"write_memo={len(snap.write_memo)} "
          f"read_memo={len(snap.read_memo)} hot={len(snap.hot)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
