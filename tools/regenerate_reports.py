"""Regenerate every paper table/measurement as one consolidated report.

Produces the markdown-ish block EXPERIMENTS.md's measured numbers come
from.  Timing-sensitive rows use quick wall-clock measurements (for the
statistically careful versions, run ``pytest benchmarks/
--benchmark-only``); counting rows are exact.

Run:  python tools/regenerate_reports.py [corpus-size]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import (
    accuracy_scan,
    digit_length_stats,
    undershoot_bound,
    worst_undershoot,
)
from repro.baselines.naive_fixed import fixed_digits_loop
from repro.baselines.naive_printf import audit_naive_printf
from repro.core.dragon import shortest_digits
from repro.core.rounding import ReaderMode
from repro.core.scaling import scale_estimate, scale_float_log, scale_iterative
from repro.fastpath import STATS as FAST_STATS
from repro.fastpath import fixed_fast, shortest_fast
from repro.floats.formats import BINARY64
from repro.workloads.schryer import corpus


def _time(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def table2(values) -> None:
    print("## Table 2 — scaling algorithms (relative CPU time)")
    timings = {}
    for name, scaler in (("estimator", scale_estimate),
                         ("float-log", scale_float_log),
                         ("iterative", scale_iterative)):
        def run():
            for v in values:
                shortest_digits(v, scaler=scaler)
        run()  # warm caches
        timings[name] = _time(run)
    base = timings["estimator"]
    for name, t in timings.items():
        print(f"  {name:12s} {t / base:6.2f}x   ({t * 1e3:.0f} ms)")
    print(f"  paper: iterative ~86x (compiled Scheme; see EXPERIMENTS.md "
          f"for the growth-law reproduction)")
    print()


def table3(values) -> None:
    print("## Table 3 — free vs fixed vs printf")

    def free():
        for v in values:
            shortest_digits(v, mode=ReaderMode.NEAREST_EVEN)

    def fixed17():
        for v in values:
            fixed_digits_loop(v, 17)

    free()
    fixed17()
    t_free, t_fixed = _time(free), _time(fixed17)
    print(f"  free / fixed-17:  {t_free / t_fixed:.2f}x   "
          f"(paper geometric mean 1.66x, range 1.59-1.81)")
    for precision in (53, 64, 113):
        audit = audit_naive_printf(values, precision=precision)
        print(f"  printf model ({precision:3d}-bit chain): "
              f"{audit.incorrect:5d}/{audit.total} incorrectly rounded")
    print("  paper: 0 (exact libcs) ... 6280/250680 (worst 1996 system)")
    print()


def in_text_numbers(values) -> None:
    print("## In-text claims")
    stats = digit_length_stats(values)
    print(f"  mean shortest digits: {stats.mean:.2f}  (paper: 15.2)")
    scan = accuracy_scan(values)
    for name in ("float-log", "gay", "fast"):
        print(f"  estimator {name:10s} exact {scan[name].exact_rate:6.1%}")
    print(f"  undershoot bound base 3: analytic "
          f"{undershoot_bound(2, 3):.4f}, observed "
          f"{worst_undershoot(BINARY64, 3):.4f}  (paper: < 0.631)")
    print()


def fastpaths(values) -> None:
    print("## Fast paths (follow-on work)")
    FAST_STATS.reset()
    for v in values:
        shortest_fast(v)
        fixed_fast(v, 15)
    n = len(values)
    print(f"  grisu3 hit rate:  {FAST_STATS.shortest_hits / n:6.1%}")
    print(f"  counted hit rate: {FAST_STATS.fixed_hits / n:6.1%}")
    print()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    values = corpus(n)
    print(f"# Regenerated reports (corpus n={n})\n")
    table2(values)
    table3(values)
    in_text_numbers(values)
    fastpaths(values)


if __name__ == "__main__":
    main()
