"""Regenerate BENCH_engine.json — the tiered-engine acceptance numbers.

Run:  PYTHONPATH=src python tools/bench_engine.py [--quick] [-n N] [-o PATH]

Measures the tiered engine (repro.engine) against the exact-only
``format_shortest`` path on a uniform-random binary64 corpus, audits
byte-equality, and writes the result as JSON.  Exits non-zero if any
output mismatches the exact algorithm or the fast tiers resolve fewer
than 99% of conversions — correctness gates, not timing gates, so the
smoke run stays meaningful on loaded CI machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.bench import run_engine_bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", type=int, default=20000,
                        help="corpus size (default 20000)")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, single repeat (CI smoke)")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default BENCH_engine.json next "
                             "to the repo root; '-' for stdout only)")
    args = parser.parse_args(argv)

    n = 2000 if args.quick else args.n
    repeats = 1 if args.quick else args.repeats
    result = run_engine_bench(n=n, seed=args.seed, repeats=repeats)
    result["generated_by"] = "tools/bench_engine.py"
    result["quick"] = args.quick
    result["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    text = json.dumps(result, indent=2, sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        path = args.output or os.path.join(
            os.path.dirname(__file__), "..", "BENCH_engine.json")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {os.path.abspath(path)}")
        print(f"speedup (format_many): "
              f"{result['speedup']['format_many']:.2f}x, "
              f"fast-resolved: {result['fast_resolved']:.4f}, "
              f"mismatches: {result['mismatches']}")

    if result["mismatches"]:
        print("FAIL: engine output mismatches the exact algorithm",
              file=sys.stderr)
        return 1
    if result["fast_resolved"] < 0.99:
        print("FAIL: fast tiers resolved under 99% of conversions",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
