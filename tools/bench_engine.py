"""Regenerate BENCH_engine.json — the tiered-engine acceptance numbers.

Run:  PYTHONPATH=src python tools/bench_engine.py [--quick] [-n N] [-o PATH]

Measures the tiered engine (repro.engine) against the exact-only paths —
``format_shortest`` for free format, ``exact_fixed_digits`` for
fixed/counted format, ``read_decimal`` for the read side — on a
uniform-random binary64 corpus, audits byte/bit-equality, and writes the
result as JSON.  ``--reader`` runs only the read-side section; ``--bulk``
only the bulk serving-layer section; ``--buffer`` only the byte-plane
pipeline section (``parse_buffer``/``format_buffer`` MB/s); ``--warm``
only the warm-start snapshot section (cold vs warm startup and
first-10k latency).  Exits
non-zero if any
output mismatches the exact algorithms or the fast tiers resolve too few
conversions — correctness gates, not timing gates, so the smoke run
stays meaningful on loaded CI machines.

The output schema is pinned by :data:`BENCH_SCHEMA` and covered by
``tests/test_tools.py`` — extend the schema there when adding fields so
downstream consumers of ``BENCH_engine.json`` can rely on it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.bench import run_engine_bench  # noqa: E402

#: Required keys of BENCH_engine.json, nested dicts spelled out.  A
#: value of ``dict`` means "any mapping"; a tuple lists required
#: sub-keys.  Schema changes must update this and the stability test.
BENCH_SCHEMA = {
    "corpus": ("kind", "n", "seed", "audit_n", "mix"),
    "us_per_value": ("exact_only", "engine_format", "engine_format_many",
                     "engine_memo_hot"),
    "speedup": ("format", "format_many", "memo_hot"),
    "fast_resolved": float,
    "mismatches": int,
    "mismatch_samples": list,
    "stats": dict,
    "fixed": {
        "ndigits": int,
        "audit_ndigits": list,
        "corpus": ("kind", "n", "seed", "audit_n", "mix"),
        "us_per_value": ("exact_only", "engine_counted", "engine_memo_hot"),
        "speedup": ("counted", "memo_hot"),
        "fast_resolved": float,
        "audit_fast_resolved": float,
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "reader": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix"),
        "us_per_value": ("exact_only", "engine_read", "engine_read_many",
                         "engine_memo_hot"),
        "speedup": ("read", "read_many", "memo_hot"),
        "fast_resolved": float,
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "bulk": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix", "distinct",
                   "dup_factor", "zipf_s"),
        "us_per_value": ("scalar_format_many_flat", "bulk_flat",
                         "bulk_nodedup_flat", "scalar_format_many_zipf",
                         "bulk_zipf", "scalar_read_many", "bulk_read"),
        "speedup": ("uniform", "zipf", "nodedup", "read"),
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "buffer": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix", "distinct",
                   "dup_factor", "zipf_s"),
        "plane_bytes": ("parse_flat", "parse_zipf", "format_flat",
                        "format_zipf"),
        "us_per_value": ("row_parse_flat", "buffer_parse_flat",
                         "row_format_flat", "buffer_format_flat",
                         "row_parse_zipf", "buffer_parse_zipf",
                         "row_format_zipf", "buffer_format_zipf"),
        "mb_per_s": ("parse_flat", "parse_zipf", "format_flat",
                     "format_zipf"),
        "speedup": ("parse_flat", "parse_zipf", "format_flat",
                    "format_zipf", "pipeline_flat", "pipeline_zipf",
                    "pipeline"),
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "binary32": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix"),
        "us_per_value": ("exact_only", "engine_format"),
        "speedup": ("format",),
        "fast_resolved": float,
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "warm": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix", "distinct",
                   "zipf_s"),
        "snapshot": ("formats", "write_memo", "read_memo", "hot"),
        "startup_ms": ("cold", "warm"),
        "us_per_value": ("cold_first_10k", "warm_first_10k"),
        "speedup": ("startup", "first_10k"),
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
    "contenders": {
        "corpus": ("kind", "n", "seed", "audit_n", "mix"),
        "orderings": ("grisu3_first", "schubfach_first",
                      "schubfach_only"),
        "read_orderings": ("window_first", "lemire_first",
                           "lemire_only"),
        "us_per_value": ("flat", "zipf", "specials", "read_certified"),
        "bail_rate": ("flat", "zipf", "specials"),
        "read_tier2_calls": ("window_first", "lemire_first",
                             "lemire_only"),
        "winners": ("flat", "zipf", "specials", "read_certified"),
        "mismatches": int,
        "mismatch_samples": list,
        "stats": dict,
    },
}


def validate_bench_schema(result: dict, schema: dict = None,
                          path: str = "") -> list:
    """Return a list of schema violations (empty when conformant)."""
    schema = BENCH_SCHEMA if schema is None else schema
    problems = []
    for key, spec in schema.items():
        where = f"{path}{key}"
        if key not in result:
            problems.append(f"missing key: {where}")
            continue
        value = result[key]
        if isinstance(spec, dict):
            if not isinstance(value, dict):
                problems.append(f"not a mapping: {where}")
            else:
                problems += validate_bench_schema(value, spec, where + ".")
        elif isinstance(spec, tuple):
            if not isinstance(value, dict):
                problems.append(f"not a mapping: {where}")
            else:
                for sub in spec:
                    if sub not in value:
                        problems.append(f"missing key: {where}.{sub}")
        elif spec is float:
            if not isinstance(value, (int, float)):
                problems.append(f"not a number: {where}")
        elif not isinstance(value, spec):
            problems.append(f"not a {spec.__name__}: {where}")
    return problems


def _check_reader_gates(reader: dict, quick: bool) -> int:
    """Acceptance gates for the read-side bench section.

    Correctness gates always apply; the 2x timing gate is skipped on
    ``--quick`` runs so loaded CI machines cannot flake the smoke lane.
    """
    status = 0
    if reader["mismatches"]:
        print("FAIL: reader engine output mismatches the exact reader",
              file=sys.stderr)
        status = 1
    if reader["fast_resolved"] < 0.95:
        print("FAIL: reader fast tiers resolved under 95% of conversions",
              file=sys.stderr)
        status = 1
    if not quick and reader["speedup"]["read_many"] < 2.0:
        print("FAIL: tiered reader (read_many) under 2x over the exact "
              "fallback", file=sys.stderr)
        status = 1
    return status


def _check_bulk_gates(bulk: dict, quick: bool) -> int:
    """Acceptance gates for the bulk serving-layer section.

    Byte identity always applies.  The timing gates — dedup interning
    at least 2x over the scalar batch API on the flat duplicate-bearing
    corpus, and a *larger* win on the zipfian head — are skipped on
    ``--quick`` so loaded CI machines cannot flake the smoke lane.
    """
    status = 0
    if bulk["mismatches"]:
        print("FAIL: bulk layer output mismatches the scalar engine",
              file=sys.stderr)
        status = 1
    if not quick and bulk["speedup"]["uniform"] < 2.0:
        print("FAIL: bulk dedup pipeline under 2x over scalar "
              "format_many on the flat duplicate corpus", file=sys.stderr)
        status = 1
    if not quick and bulk["speedup"]["zipf"] <= bulk["speedup"]["uniform"]:
        print("FAIL: zipfian corpus should out-accelerate the flat one "
              "(interning collapses more of the column)", file=sys.stderr)
        status = 1
    return status


def _check_buffer_gates(buf: dict, quick: bool) -> int:
    """Acceptance gates for the byte-plane pipeline section.

    Byte/bit identity against the row-at-a-time path always applies.
    The timing gates are on the parse leg (where the plane pipeline
    removes the per-row string materialization) and on the combined
    parse+format pipeline — the format side alone is conversion-bound
    after dedup, so it only has to not regress the pipeline.  Skipped
    on ``--quick`` so loaded CI machines cannot flake the smoke lane.
    """
    status = 0
    if buf["mismatches"]:
        print("FAIL: byte-plane pipeline output mismatches the "
              "row-at-a-time path", file=sys.stderr)
        status = 1
    if not quick and buf["speedup"]["parse_flat"] < 1.3:
        print("FAIL: parse_buffer under 1.3x over the row-at-a-time "
              "read path on the flat corpus", file=sys.stderr)
        status = 1
    if not quick and buf["speedup"]["pipeline_flat"] < 1.3:
        print("FAIL: buffer pipeline (parse+format) under 1.3x over "
              "the row-at-a-time path on the flat corpus",
              file=sys.stderr)
        status = 1
    if not quick and buf["speedup"]["pipeline_zipf"] < 1.3:
        print("FAIL: buffer pipeline (parse+format) under 1.3x over "
              "the row-at-a-time path on the zipf corpus",
              file=sys.stderr)
        status = 1
    return status


def _check_warm_gates(warm: dict, quick: bool) -> int:
    """Acceptance gates for the warm-start (snapshot) section.

    Identity always applies — a snapshot may only skip work, never
    change bytes — as does a clean restore (``snapshot_faults == 0``
    on the snapshot the bench itself just built).  The timing gate
    (warm first-10k strictly below cold) is skipped on ``--quick`` so
    loaded CI machines cannot flake the smoke lane.
    """
    status = 0
    if warm["mismatches"]:
        print("FAIL: warm-start engine output mismatches the cold "
              "engine", file=sys.stderr)
        status = 1
    if warm["stats"].get("snapshot_faults"):
        print("FAIL: the bench's own snapshot was rejected on restore",
              file=sys.stderr)
        status = 1
    if not quick and warm["speedup"]["first_10k"] <= 1.0:
        print("FAIL: warm first-10k latency not below cold "
              f"({warm['speedup']['first_10k']:.2f}x)", file=sys.stderr)
        status = 1
    return status


def _check_contenders_gates(c: dict, quick: bool) -> int:
    """Acceptance gates for the contender-lanes section.

    All gates here are correctness claims, not timing claims, so they
    apply on ``--quick`` too: every ordering must be byte-identical to
    the exact order, the schubfach orderings must never bail to the
    exact writer (the lane has no bail path), and the lemire orderings
    must never consult the exact rational reader on the certified-digit
    corpus.  Which ordering *wins* is recorded per corpus, never gated —
    tier ordering is a measured decision.
    """
    status = 0
    if c["mismatches"]:
        print("FAIL: a contender ordering mismatches the exact order",
              file=sys.stderr)
        status = 1
    for mix, rates in c["bail_rate"].items():
        for name in ("schubfach_first", "schubfach_only"):
            if rates[name] != 0.0:
                print(f"FAIL: {name} bailed on the {mix} corpus "
                      f"(bail rate {rates[name]:.4f}, expected 0)",
                      file=sys.stderr)
                status = 1
    for name in ("lemire_first", "lemire_only"):
        if c["read_tier2_calls"][name]:
            print(f"FAIL: {name} consulted the exact reader "
                  f"{c['read_tier2_calls'][name]} times on the "
                  "certified-digit corpus (expected 0)", file=sys.stderr)
            status = 1
    return status


def _check_binary32_gates(b32: dict, quick: bool) -> int:
    """Acceptance gates for the binary32 (narrow-format) section."""
    status = 0
    if b32["mismatches"]:
        print("FAIL: binary32 engine output mismatches the exact "
              "algorithm", file=sys.stderr)
        status = 1
    if b32["fast_resolved"] < 0.98:
        print("FAIL: binary32 fast tiers resolved under 98% of "
              "conversions", file=sys.stderr)
        status = 1
    if not quick and b32["speedup"]["format"] < 1.4:
        print("FAIL: binary32 engine under 1.4x over the exact path",
              file=sys.stderr)
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", type=int, default=20000,
                        help="corpus size (default 20000)")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best-of (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus, single repeat (CI smoke)")
    parser.add_argument("--reader", action="store_true",
                        help="run only the read-side (decimal→binary) "
                             "bench and print it to stdout; the default "
                             "output file is not touched")
    parser.add_argument("--bulk", action="store_true",
                        help="run only the bulk serving-layer bench and "
                             "print it to stdout; the default output "
                             "file is not touched")
    parser.add_argument("--buffer", action="store_true",
                        help="run only the byte-plane pipeline bench "
                             "(parse_buffer/format_buffer MB/s) and "
                             "print it to stdout; the default output "
                             "file is not touched")
    parser.add_argument("--warm", action="store_true",
                        help="run only the warm-start (snapshot) bench "
                             "— cold vs warm startup and first-10k "
                             "latency — and print it to stdout; the "
                             "default output file is not touched")
    parser.add_argument("--contenders", action="store_true",
                        help="run only the contender-lanes bench — "
                             "grisu3-first vs schubfach-first vs "
                             "schubfach-only orderings (and the reader "
                             "lanes) raced per corpus — and print it to "
                             "stdout; the default output file is not "
                             "touched")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default BENCH_engine.json next "
                             "to the repo root; '-' for stdout only)")
    args = parser.parse_args(argv)

    n = 2000 if args.quick else args.n
    repeats = 1 if args.quick else args.repeats

    if args.contenders:
        from repro.engine.bench import _run_contenders_bench

        c = _run_contenders_bench(n=n, seed=args.seed, repeats=repeats)
        print(json.dumps(c, indent=2, sort_keys=True))
        print(f"contenders: winners {c['winners']}, "
              f"mismatches: {c['mismatches']}", file=sys.stderr)
        return _check_contenders_gates(c, quick=args.quick)

    if args.bulk:
        from repro.engine.bench import _run_bulk_bench

        bulk = _run_bulk_bench(n=n, seed=args.seed, repeats=repeats)
        print(json.dumps(bulk, indent=2, sort_keys=True))
        print(f"bulk speedup (dedup vs format_many): "
              f"flat {bulk['speedup']['uniform']:.2f}x, "
              f"zipf {bulk['speedup']['zipf']:.2f}x, "
              f"mismatches: {bulk['mismatches']}", file=sys.stderr)
        return _check_bulk_gates(bulk, quick=args.quick)

    if args.buffer:
        from repro.engine.bench import _run_buffer_bench

        buf = _run_buffer_bench(n=n, seed=args.seed, repeats=repeats)
        print(json.dumps(buf, indent=2, sort_keys=True))
        print(f"buffer speedup (vs row-at-a-time): "
              f"parse flat {buf['speedup']['parse_flat']:.2f}x, "
              f"pipeline flat {buf['speedup']['pipeline_flat']:.2f}x / "
              f"zipf {buf['speedup']['pipeline_zipf']:.2f}x, "
              f"parse {buf['mb_per_s']['parse_flat']:.0f} MB/s, "
              f"mismatches: {buf['mismatches']}", file=sys.stderr)
        return _check_buffer_gates(buf, quick=args.quick)

    if args.warm:
        from repro.engine.bench import _run_warm_bench

        warm = _run_warm_bench(n=n, seed=args.seed, repeats=repeats)
        print(json.dumps(warm, indent=2, sort_keys=True))
        print(f"warm-start: startup "
              f"{warm['speedup']['startup']:.2f}x, "
              f"first-10k {warm['speedup']['first_10k']:.2f}x "
              f"({warm['us_per_value']['warm_first_10k']:.2f} vs "
              f"{warm['us_per_value']['cold_first_10k']:.2f} us/value), "
              f"mismatches: {warm['mismatches']}", file=sys.stderr)
        return _check_warm_gates(warm, quick=args.quick)

    if args.reader:
        from repro.engine.bench import _run_reader_bench

        reader = _run_reader_bench(n=n, seed=args.seed, repeats=repeats)
        print(json.dumps(reader, indent=2, sort_keys=True))
        print(f"reader speedup (read_many): "
              f"{reader['speedup']['read_many']:.2f}x, "
              f"fast-resolved: {reader['fast_resolved']:.4f}, "
              f"mismatches: {reader['mismatches']}", file=sys.stderr)
        return _check_reader_gates(reader, quick=args.quick)

    result = run_engine_bench(n=n, seed=args.seed, repeats=repeats)
    result["generated_by"] = "tools/bench_engine.py"
    result["quick"] = args.quick
    result["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")

    problems = validate_bench_schema(result)
    if problems:  # pragma: no cover - guarded by the schema test
        for p in problems:
            print(f"SCHEMA: {p}", file=sys.stderr)
        return 1

    text = json.dumps(result, indent=2, sort_keys=True)
    if args.output == "-":
        print(text)
    else:
        path = args.output or os.path.join(
            os.path.dirname(__file__), "..", "BENCH_engine.json")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {os.path.abspath(path)}")
        print(f"speedup (format_many): "
              f"{result['speedup']['format_many']:.2f}x, "
              f"fast-resolved: {result['fast_resolved']:.4f}, "
              f"mismatches: {result['mismatches']}")
        fixed = result["fixed"]
        print(f"fixed speedup (counted, ndigits={fixed['ndigits']}): "
              f"{fixed['speedup']['counted']:.2f}x, "
              f"fast-resolved: {fixed['fast_resolved']:.4f}, "
              f"mismatches: {fixed['mismatches']}")
        reader = result["reader"]
        print(f"reader speedup (read_many): "
              f"{reader['speedup']['read_many']:.2f}x, "
              f"fast-resolved: {reader['fast_resolved']:.4f}, "
              f"mismatches: {reader['mismatches']}")
        bulk = result["bulk"]
        print(f"bulk speedup (dedup vs format_many): "
              f"flat {bulk['speedup']['uniform']:.2f}x, "
              f"zipf {bulk['speedup']['zipf']:.2f}x, "
              f"mismatches: {bulk['mismatches']}")
        buf = result["buffer"]
        print(f"buffer speedup (vs row-at-a-time): "
              f"parse flat {buf['speedup']['parse_flat']:.2f}x, "
              f"pipeline flat {buf['speedup']['pipeline_flat']:.2f}x / "
              f"zipf {buf['speedup']['pipeline_zipf']:.2f}x, "
              f"parse {buf['mb_per_s']['parse_flat']:.0f} MB/s, "
              f"mismatches: {buf['mismatches']}")
        b32 = result["binary32"]
        print(f"binary32 speedup (format): "
              f"{b32['speedup']['format']:.2f}x, "
              f"fast-resolved: {b32['fast_resolved']:.4f}, "
              f"mismatches: {b32['mismatches']}")
        warm = result["warm"]
        print(f"warm-start: startup {warm['speedup']['startup']:.2f}x, "
              f"first-10k {warm['speedup']['first_10k']:.2f}x, "
              f"mismatches: {warm['mismatches']}")
        cont = result["contenders"]
        print(f"contenders: winners {cont['winners']}, "
              f"mismatches: {cont['mismatches']}")

    if result["mismatches"]:
        print("FAIL: engine output mismatches the exact algorithm",
              file=sys.stderr)
        return 1
    if result["fast_resolved"] < 0.99:
        print("FAIL: fast tiers resolved under 99% of conversions",
              file=sys.stderr)
        return 1
    if result["fixed"]["mismatches"]:
        print("FAIL: fixed-format engine output mismatches the exact "
              "algorithms", file=sys.stderr)
        return 1
    if result["fixed"]["fast_resolved"] < 0.90:
        print("FAIL: fixed fast tier resolved under 90% of conversions",
              file=sys.stderr)
        return 1
    return (_check_reader_gates(result["reader"], quick=args.quick)
            or _check_bulk_gates(result["bulk"], quick=args.quick)
            or _check_buffer_gates(result["buffer"], quick=args.quick)
            or _check_binary32_gates(result["binary32"], quick=args.quick)
            or _check_warm_gates(result["warm"], quick=args.quick)
            or _check_contenders_gates(result["contenders"],
                                       quick=args.quick))


if __name__ == "__main__":
    raise SystemExit(main())
