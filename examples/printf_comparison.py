"""Scenario: auditing a platform's printf (the Table 3 experiment).

The paper counted how many of 250,680 test values each 1996 system's
printf rounded incorrectly (0 on the systems that had adopted exact
conversion; 6,280 on the worst).  Here we rerun that audit against
(a) the soft-float model of the era's float-arithmetic printfs at three
intermediate precisions, and (b) the host's modern libc — and print a
few concrete mis-rounded outputs so the failure is tangible.

Run:  python examples/printf_comparison.py
"""

from repro import format_printf
from repro.baselines.naive_fixed import naive_fixed_17
from repro.baselines.naive_printf import (
    is_correctly_rounded,
    naive_printf_digits,
)
from repro.workloads.schryer import corpus


def audit() -> None:
    values = corpus(2000)
    print("=== Incorrectly rounded 17-digit outputs (n=2000) ===")
    for precision, label in ((53, "double chain (pre-1990 style)"),
                             (64, "x87 extended chain (mid-90s)"),
                             (113, "quad chain / near-exact")):
        wrong = []
        for v in values:
            k, digits = naive_printf_digits(v, 17, precision)
            if not is_correctly_rounded(v, k, digits):
                wrong.append((v, k, digits))
        print(f"  {label:32s} {len(wrong):5d} incorrect")
        for v, k, digits in wrong[:2]:
            want = naive_fixed_17(v)
            print(f"      e.g. {v!r}")
            print(f"        got  {''.join(map(str, digits))} e{k}")
            print(f"        want {''.join(map(str, want.digits))} "
                  f"e{want.k}")


def our_printf_is_exact() -> None:
    values = corpus(2000)
    print()
    print("=== Our printf (built on the exact converter) ===")
    wrong = 0
    for v in values:
        want = naive_fixed_17(v)
        got = format_printf("%.16e", v.to_float())
        mantissa = got.split("e")[0].replace(".", "")
        wrong += mantissa != "".join(map(str, want.digits))
    print(f"  {wrong} of {len(values)} incorrect (must be 0)")
    assert wrong == 0


def host_spot_check() -> None:
    print()
    print("=== Spot check vs the host libc ===")
    for spec, x in (("%.17e", 0.1), ("%.3f", 2.675), ("%g", 1e-5),
                    ("%.12g", 1 / 3)):
        ours = format_printf(spec, x)
        host = spec % x
        marker = "==" if ours == host else "!="
        print(f"  {spec:>7} {x!r:>8}: ours {ours:>22} {marker} "
              f"host {host}")


def main() -> None:
    audit()
    our_printf_is_exact()
    host_spot_check()


if __name__ == "__main__":
    main()
