"""Quickstart: the paper's two printing modes in five minutes.

Run:  python examples/quickstart.py
"""

from repro import (
    BINARY32,
    Flonum,
    ReaderMode,
    format_fixed,
    format_shortest,
    read_decimal,
)


def main() -> None:
    print("=== Free format: shortest string that reads back exactly ===")
    for x in [0.3, 0.1 + 0.2, 1 / 3, 1e23, 5e-324, -2.5, 6.02214076e23]:
        print(f"  {x!r:>28}  ->  {format_shortest(x)}")

    print()
    print("=== The 1e23 example (paper Section 3.1) ===")
    # 10**23 falls exactly between two doubles.  An IEEE reader resolves
    # the tie to the even mantissa, so the printer may emit the bare
    # boundary — if it knows the reader's rounding mode.
    x = 1e23
    print("  reader known (IEEE nearest-even):",
          format_shortest(x, mode=ReaderMode.NEAREST_EVEN))
    print("  reader unknown (conservative):   ",
          format_shortest(x, mode=ReaderMode.NEAREST_UNKNOWN))

    print()
    print("=== Fixed format: correct rounding + '#' insignificance ===")
    print("  1/3 to 10 digits:   ", format_fixed(1 / 3, ndigits=10))
    print("  100.0, 20 decimals: ", format_fixed(100.0, decimals=20))
    print("  5e-324, 12 digits:  ",
          format_fixed(5e-324, ndigits=12, style="scientific"))
    print("  pi to cents:        ", format_fixed(3.14159265, decimals=2))

    print()
    print("=== Round trip through our own accurate reader ===")
    s = format_shortest(0.1)
    v = read_decimal(s)
    print(f"  '{s}' reads back as {v!r}")
    print("  equal to the original:", v == Flonum.from_float(0.1))

    print()
    print("=== Other formats: the same algorithm, any precision ===")
    third32 = read_decimal("0.3333333333333333", BINARY32)
    print("  1/3 as binary32 prints:", format_shortest(third32))
    print("  (8 digits suffice for single precision; 16 for double)")


if __name__ == "__main__":
    main()
