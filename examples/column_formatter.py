"""Scenario: width-aware table rendering with the incremental digit API.

A report generator has a fixed column width and wants the most
informative representation that fits: full shortest output when it
fits, a correctly rounded prefix when it does not (marked with a
trailing '~'), falling back wider only when even one digit cannot fit.
The :class:`repro.DigitStream` API makes this a one-pass decision per
value instead of print-measure-reprint.

Run:  python examples/column_formatter.py
"""

from repro import DigitStream, Flonum
from repro.format.notation import NotationOptions, render_shortest


def fit_column(x: float, width: int) -> str:
    """Render x into at most `width` characters, as precisely as fits."""
    v = Flonum.from_float(x)
    if v.is_nan:
        return "nan".rjust(width)
    if v.is_infinite:
        return ("-inf" if v.sign else "inf").rjust(width)
    if v.is_zero:
        return "0".rjust(width)
    sign = "-" if v.is_negative else ""
    mag = v.abs()

    # Try decreasing digit budgets until the rendering fits.
    full = render_shortest(DigitStream(mag).take(25),
                           NotationOptions())
    natural_len = len(sign + full)
    if natural_len <= width:
        return (sign + full).rjust(width)
    for budget in range(width, 0, -1):
        stream = DigitStream(mag)
        result = stream.take(budget)
        body = render_shortest(result, NotationOptions())
        text = sign + body + ("" if stream.complete else "~")
        if len(text) <= width:
            return text.rjust(width)
    return "#" * width  # nothing fits: overflow marker, spreadsheet-style


def main() -> None:
    rows = [
        ("pi", 3.141592653589793),
        ("avogadro", 6.02214076e23),
        ("third", 1 / 3),
        ("tenth", 0.1),
        ("tiny", 5e-324),
        ("neat", 42.5),
        ("negative", -123456.789),
        ("sum", 0.1 + 0.2),
    ]
    for width in (22, 12, 8):
        print(f"=== column width {width} ===")
        for name, x in rows:
            print(f"  {name:>9} |{fit_column(x, width)}|")
        print()
    print("'~' marks a correctly rounded prefix (stream stopped early);")
    print("exact shortest strings appear whenever they fit.")


if __name__ == "__main__":
    main()
