"""Scenario: a JSON encoder's number serializer.

JSON is where shortest round-trip printing earns its keep today: every
double must survive serialize→parse bit-for-bit, and the wire format has
no 'binary64' escape hatch.  Pre-shortest encoders printed %.17g and
shipped 0.10000000000000001; this example builds a minimal JSON value
encoder on the paper's algorithm and measures what it buys.

Run:  python examples/json_numbers.py
"""

import json
import math
import random

from repro import format_shortest
from repro.baselines.naive_fixed import naive_fixed_17
from repro.format.notation import NotationOptions, render_shortest
from repro.workloads.schryer import corpus

#: JSON has no inf/nan; this encoder follows the strict spec.
_JSON_OPTS = NotationOptions(style="auto", exp_low=-4, exp_high=16)


def encode_number(x: float) -> str:
    """Shortest JSON-legal representation of a finite double."""
    if math.isnan(x) or math.isinf(x):
        raise ValueError("JSON has no NaN/Infinity")
    return format_shortest(x, options=_JSON_OPTS)


def encode(value) -> str:
    """A miniature JSON encoder (objects/arrays/strings kept trivial)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return encode_number(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(encode(v) for v in value) + "]"
    if isinstance(value, dict):
        return "{" + ",".join(
            f"{json.dumps(k)}:{encode(v)}" for k, v in value.items()) + "}"
    raise TypeError(type(value))


def seventeen_digit_encoding(x: float) -> str:
    """What a pre-shortest encoder shipped."""
    return f"{x:.17g}"


def main() -> None:
    rng = random.Random(3)
    doubles = [v.to_float() for v in corpus(2000)]
    doubles += [rng.random() for _ in range(2000)]
    doubles += [rng.random() * 10**rng.randrange(-10, 10)
                for _ in range(2000)]

    print("=== Round-trip through json.loads ===")
    bad = sum(json.loads(encode_number(x)) != x for x in doubles)
    print(f"  {len(doubles)} doubles, {bad} round-trip failures (must be 0)")
    assert bad == 0

    print()
    print("=== Wire-size: shortest vs %.17g ===")
    ours = sum(len(encode_number(x)) for x in doubles)
    theirs = sum(len(seventeen_digit_encoding(x)) for x in doubles)
    print(f"  shortest: {ours:9d} bytes")
    print(f"  %.17g:    {theirs:9d} bytes   "
          f"({theirs / ours - 1:+.0%} larger)")

    print()
    print("=== A document, both ways ===")
    doc = {"sensor": "thermo-1", "readings": [0.1, 0.2, 0.1 + 0.2],
           "scale": 1e-6}
    print("  shortest:", encode(doc))
    legacy = json.dumps(
        {**doc, "readings": doc["readings"], "scale": doc["scale"]})
    print("  stdlib:  ", legacy)
    parsed = json.loads(encode(doc))
    assert parsed["readings"][2] == 0.1 + 0.2
    print("  (both round-trip; stdlib json already uses repr's shortest "
          "output — this is the algorithm it inherited)")


if __name__ == "__main__":
    main()
