"""Scenario: acceptance testing a float-printing port.

A run-time system adopting these algorithms wants one command that
cross-validates every engine — the Section-2 rational specification, the
integer implementation, the limb-based bignum port, the Grisu3 fast
path, the readers, and (for binary64) the host interpreter — across the
whole format zoo.  This is that command.

Run:  python examples/self_check.py [values-per-format]
"""

import sys
import time

from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    X87_80,
)
from repro.verify import verify_format

FORMATS = [
    (BINARY64, 1.0),
    (BINARY32, 0.6),
    (BINARY16, 0.6),
    (BINARY128, 0.2),
    (X87_80, 0.2),
]


def main() -> int:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    print("Cross-validating all printing/reading engines")
    print(f"(≈{budget} sampled values per format, boundary cases included)\n")
    failures = 0
    for fmt, weight in FORMATS:
        n = max(10, int(budget * weight))
        t0 = time.perf_counter()
        report = verify_format(fmt, n)
        elapsed = time.perf_counter() - t0
        print(f"  {report.summary()}  [{elapsed:.1f}s]")
        for mismatch in report.mismatches[:3]:
            print(f"      {mismatch}")
        failures += len(report.mismatches)
    print()
    if failures:
        print(f"FAILED: {failures} engine disagreements")
        return 1
    print("All engines agree on every sampled value.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
