"""Scenario: re-measure every in-text number from the paper.

Beyond the tables, Section 3-5 of the paper make quantitative claims in
prose.  This script recomputes each one on a freshly generated corpus:

* "The average number of digits needed is 15.2."
* "The floating-point logarithm estimate was almost always k; our
  simpler estimate is frequently k-1."
* "It undershoots by no more than 1/log2 B < 0.631."
* "Requiring two rather than five floating-point operations" (vs Gay).

Run:  python examples/paper_measurements.py [corpus-size]
"""

import sys

from repro.analysis import (
    accuracy_scan,
    digit_length_stats,
    histogram_lines,
    undershoot_bound,
    worst_undershoot,
)
from repro.floats.formats import BINARY64
from repro.workloads.schryer import corpus


def digit_lengths(values) -> None:
    print("=== Shortest-output digit counts (paper: mean 15.2) ===")
    stats = digit_length_stats(values)
    for line in histogram_lines(stats, width=40):
        print("  " + line)
    print()


def estimator_accuracy(values) -> None:
    print("=== Estimator accuracy (paper §3.2 / §5) ===")
    scan = accuracy_scan(values)
    for name in ("float-log", "gay", "fast"):
        acc = scan[name]
        print(f"  {name:10s} exact {acc.exact_rate:6.1%}   "
              f"k-1 {1 - acc.exact_rate:6.1%}   "
              f"overshoots: {'never' if acc.never_overshoots else 'YES!'}")
    print("  (fixup makes the off-by-one case free, so the cheapest "
          "estimator wins)")
    print()


def undershoot_bounds() -> None:
    print("=== The 0.631 bound (paper §3.2) ===")
    for base in (3, 10, 16):
        bound = undershoot_bound(2, base)
        observed = worst_undershoot(BINARY64, base=base)
        print(f"  base {base:>2}: analytic bound {bound:.4f}, "
              f"worst observed {observed:.4f}")
    print("  (base 3 is the paper's 0.631 worst case)")
    print()


def flop_counts() -> None:
    print("=== Estimator cost in operations (paper: 2 vs 5 flops) ===")
    print("  fast (paper):  s = e + len(f) - 1; ceil(s * invlog2of[B] - eps)")
    print("                 -> 1 multiply + 1 subtract on floats")
    print("  Gay's Taylor:  (x-1.5)*c1 + c2 + s*c3")
    print("                 -> 2 multiplies + 3 adds")
    print("  (in CPython both are dominated by interpreter dispatch; the")
    print("   flop counts matter on 1996 hardware and in compiled ports)")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    values = corpus(n)
    print(f"Corpus: {n} Schryer-form positive normalized doubles\n")
    digit_lengths(values)
    estimator_accuracy(values)
    undershoot_bounds()
    flop_counts()


if __name__ == "__main__":
    main()
