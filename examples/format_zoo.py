"""Scenario: one numeric pipeline, every floating-point format.

The paper's algorithm is parameterised over (radix, precision, exponent
range); combined with this package's correctly rounded arithmetic, the
same computation can be *run and printed* in binary16 through binary128,
x87-extended and IEEE decimal — exposing exactly where each format's
precision gives out.

The computation: Heron's method for sqrt(2), which doubles correct
digits per step until it hits the format's precision wall.

Run:  python examples/format_zoo.py
"""

from repro import format_shortest, read_decimal
from repro.floats import sqrt as exact_sqrt
from repro.floats.arith import add, div, mul
from repro.floats.formats import (
    BINARY16,
    BINARY32,
    BINARY64,
    BINARY128,
    DECIMAL64,
    X87_80,
)
from repro.floats.model import Flonum

FORMATS = [BINARY16, BINARY32, BINARY64, X87_80, BINARY128, DECIMAL64]


def heron(fmt, iterations=12):
    """sqrt(2) by x <- (x + 2/x)/2 in the format's own arithmetic."""
    two = read_decimal("2", fmt)
    half = read_decimal("0.5", fmt)
    x = read_decimal("1.5", fmt)
    trace = [x]
    for _ in range(iterations):
        nxt = mul(add(x, div(two, x)), half)
        if nxt == x:
            break
        x = nxt
        trace.append(x)
    return x, trace


def correct_digits(printed: str, reference: str) -> int:
    count = 0
    for a, b in zip(printed.replace(".", ""), reference.replace(".", "")):
        if a != b:
            break
        count += 1
    return count


REF = ("1.4142135623730950488016887242096980785696718753769480731766797379"
       "9073247846210703885038753432764157273501384623091229702492483605")


def main() -> None:
    print("Heron iteration for sqrt(2), per format:\n")
    print(f"{'format':>10} {'iters':>5} {'correct':>8}  converged value")
    for fmt in FORMATS:
        x, trace = heron(fmt)
        printed = format_shortest(x)
        good = correct_digits(printed, REF)
        print(f"{fmt.name:>10} {len(trace) - 1:>5} {good:>8}  {printed}")
    print()
    print("Fixed point vs the correctly rounded sqrt (repro.floats.sqrt):")
    for fmt in FORMATS:
        x, _ = heron(fmt)
        truth = exact_sqrt(read_decimal("2", fmt))
        if x == truth:
            print(f"  {fmt.name:>10}: lands exactly on the correctly "
                  "rounded root")
        else:
            from repro.floats.ulp import predecessor, successor

            off = "one ulp high" if x > truth else "one ulp low"
            assert x in (successor(truth), predecessor(truth))
            print(f"  {fmt.name:>10}: fixed point is {off} — Newton "
                  "iteration does not guarantee correct rounding!")
    print()
    print("(shortest output lengths track precision: ~4 digits for")
    print(" binary16, ~17 for binary64, ~36 for binary128)")


if __name__ == "__main__":
    main()
