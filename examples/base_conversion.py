"""Scenario: cross-base debugging output.

The algorithm converts from any radix-b format to any base B in 2..36.
Hex output is handy for comparing against C's %a; binary output shows
the mantissa structure directly; base 36 is the densest printable form.

Run:  python examples/base_conversion.py
"""

from repro import (
    BINARY16,
    Flonum,
    format_shortest,
    read_decimal,
    shortest_digits,
)


def same_value_many_bases() -> None:
    print("=== 0.1 (the double) across output bases ===")
    x = 0.1
    for base in (10, 16, 8, 36, 2):
        s = format_shortest(x, base=base, style="scientific")
        print(f"  base {base:>2}: {s}")
    print("  (every one of these reads back to the same 64 bits)")


def binary_shows_structure() -> None:
    print()
    print("=== Binary output exposes the representation ===")
    for x in (0.5, 0.75, 0.1, 3.0):
        s = format_shortest(x, base=2, style="positional")
        print(f"  {x!r:>6} = {s}")
    print("  0.1 needs the full 53-bit tail in base 2 — there is no")
    print("  shorter binary string because the value IS the binary string.")


def shortest_length_by_base() -> None:
    print()
    print("=== How many digits does 'shortest' need per base? ===")
    from repro.workloads.schryer import corpus

    values = corpus(1000)
    for base in (2, 8, 10, 16, 36):
        mean = sum(len(shortest_digits(v, base=base).digits)
                   for v in values) / len(values)
        print(f"  base {base:>2}: {mean:5.1f} digits on average")


def half_precision_table() -> None:
    print()
    print("=== All of binary16's powers of two, exactly, in hex ===")
    for e in range(-4, 5):
        v = read_decimal(str(2.0**e), BINARY16)
        print(f"  2^{e:<3} -> base16 {format_shortest(v, base=16)}")


def main() -> None:
    same_value_many_bases()
    binary_shows_structure()
    shortest_length_by_base()
    half_precision_table()


if __name__ == "__main__":
    main()
