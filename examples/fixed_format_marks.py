"""Scenario: fixed-column numeric reports without garbage digits.

A data logger prints measurements in fixed columns.  Naive fixed-format
printing manufactures digits beyond the precision of the value —
"0.3333333148" — which read as (false) measurement resolution.  The
paper's ``#`` marks make the precision boundary explicit, which matters
most for denormals and wide columns.

Run:  python examples/fixed_format_marks.py
"""

from repro import BINARY32, Flonum, format_fixed, read_decimal
from repro.baselines.steele_white import dragon4_fixed
from repro.format.notation import NotationOptions, render_fixed


def single_precision_sensor() -> None:
    print("=== A binary32 sensor value printed to 10 digits ===")
    reading = read_decimal("0.3333333333", BINARY32)
    ours = format_fixed(reading, ndigits=10)
    garbage = dragon4_fixed(reading.abs(), position=-10)
    print("  Burger-Dybvig:", ours)
    print("  Steele-White: ", render_fixed(garbage),
          "   <- plausible-looking garbage tail")


def denormal_column() -> None:
    print()
    print("=== Denormals in a wide column ===")
    for text in ("5e-324", "1.5e-323", "4.9e-320", "1e-310"):
        v = read_decimal(text)
        print(f"  {text:>10}  ->  "
              f"{format_fixed(v, ndigits=14, style='scientific')}")
    print("  (only the leading digits carry information; the rest of the")
    print("   column is explicitly insignificant)")


def accounting_rounding() -> None:
    print()
    print("=== Correct rounding at a fixed position (cents) ===")
    rows = [2.675, 2.665, 0.125, 1.005, 9.995]
    for x in rows:
        print(f"  {x!r:>8} rounds to {format_fixed(x, decimals=2):>6}"
              f"   (exact double is {format_fixed(x, decimals=20)})")
    print("  The 'surprising' cents come from the binary representation,")
    print("  not the printer: the fixed output is exactly rounded.")


def custom_mark_character() -> None:
    print()
    print("=== Custom insignificance mark ===")
    opts = NotationOptions(hash_char="?")
    from repro.core.fixed import fixed_digits

    v = Flonum.from_float(100.0)
    print("  100.0 to 20 decimals:",
          render_fixed(fixed_digits(v, position=-20), opts))


def main() -> None:
    single_precision_sensor()
    denormal_column()
    accounting_rounding()
    custom_mark_character()


if __name__ == "__main__":
    main()
