"""Scenario: a language run-time's ``repr`` built on the paper's algorithm.

CPython's ``repr(float)`` solves exactly the paper's free-format problem.
This example rebuilds it from our primitives, verifies it against the
interpreter on a corpus of hard cases, and shows what the *reader-mode
parameter* buys: shorter output whenever the consumer's rounding is known.

Run:  python examples/repr_roundtrip.py
"""

import struct

from repro import ReaderMode, format_shortest, py_repr
from repro.floats.model import Flonum
from repro.workloads.corpus import decimal_ties, torture_floats
from repro.workloads.schryer import corpus


def check_against_cpython() -> None:
    print("=== py_repr vs CPython repr ===")
    hard = [v.to_float() for v in torture_floats()]
    hard += [v.to_float() for v in decimal_ties()]
    hard += [v.to_float() for v in corpus(2000)]
    mismatches = [x for x in hard if py_repr(x) != repr(x)]
    print(f"  {len(hard)} hard doubles checked, "
          f"{len(mismatches)} mismatches")
    assert not mismatches


def shorter_with_reader_knowledge() -> None:
    print()
    print("=== Where reader awareness shortens output ===")
    shorter = []
    for v in decimal_ties():
        x = v.to_float()
        aware = format_shortest(x, mode=ReaderMode.NEAREST_EVEN)
        safe = format_shortest(x, mode=ReaderMode.NEAREST_UNKNOWN)
        if len(aware) < len(safe):
            shorter.append((aware, safe))
    print(f"  {len(shorter)} boundary doubles print shorter for an "
          "IEEE reader, e.g.:")
    for aware, safe in shorter[:5]:
        print(f"    {aware:>10}  instead of  {safe}")


def average_lengths() -> None:
    print()
    print("=== Average shortest-digit count (Schryer corpus) ===")
    values = corpus(5000)
    from repro import shortest_digits

    total = sum(len(shortest_digits(v).digits) for v in values)
    print(f"  mean digits: {total / len(values):.2f} "
          "(the paper reports 15.2 on its corpus; 17 always suffices)")


def main() -> None:
    check_against_cpython()
    shorter_with_reader_knowledge()
    average_lengths()


if __name__ == "__main__":
    main()
