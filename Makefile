# Convenience targets for the reproduction.

PY ?= python3
BENCH_N ?= 400

.PHONY: install test bench bench-engine smoke ci examples verify all clean reports

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	REPRO_BENCH_N=$(BENCH_N) $(PY) -m pytest benchmarks/ --benchmark-only

# Regenerate BENCH_engine.json (exits non-zero on any engine/exact
# output mismatch or a fast-resolved rate below 0.99).
bench-engine:
	$(PY) tools/bench_engine.py

# Quick correctness smoke of the engine (what CI runs).
smoke:
	$(PY) tools/bench_engine.py --quick -o /dev/null

ci: test smoke

reports:
	REPRO_BENCH_N=$(BENCH_N) $(PY) -m pytest benchmarks/ -s
	$(PY) tools/regenerate_reports.py 1000

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PY) $$ex > /dev/null || exit 1; \
	done; echo "all examples ran clean"

verify:
	$(PY) examples/self_check.py 200

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
