# Convenience targets for the reproduction.

PY ?= python3
BENCH_N ?= 400

.PHONY: install test test-fast test-slow fuzz chaos bench bench-engine bench-reader bench-bulk bench-buffer bench-serve bench-warm bench-contenders snapshot serve-smoke control-smoke smoke ci examples verify all clean reports

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

# The PR-sized suite: everything except the slow differential sweeps.
test-fast:
	$(PY) -m pytest tests/ -m "not slow"

# The nightly sweeps only (10k-value printf differential, etc.).
test-slow:
	$(PY) -m pytest tests/ -m slow

# The differential verification battery with a fresh random seed — what
# the nightly CI fuzz job runs; the seed is printed for reproduction.
# The second invocation runs the decimal→binary round-trip battery, the
# third the bulk serving-layer byte-identity battery.
fuzz:
	$(PY) -m repro.verify --n 300 --seed fresh
	$(PY) -m repro.verify --roundtrip --n 300 --seed fresh
	$(PY) -m repro.verify --bulk --n 300 --seed fresh
	$(PY) -m repro.verify --buffer --n 300 --seed fresh
	$(PY) -m repro.verify --chaos --n 2000 --seed fresh --formats binary64
	$(PY) -m repro.verify --serve --n 2000 --seed fresh --formats binary64
	$(PY) -m repro.verify --control --n 2000 --seed fresh --formats binary64
	$(PY) -m repro.verify --warm --n 2000 --seed fresh --formats binary64
	$(PY) -m repro.verify --contenders --n 50000 --seed fresh

# The chaos battery: the bulk byte-identity checks replayed under
# deterministic injected faults (worker crashes, shard stalls, payload
# corruption, fast-tier raises).  Fixed seed; see docs/robustness.md.
chaos:
	$(PY) -m repro.verify --chaos --n 10000 --formats binary64

bench:
	REPRO_BENCH_N=$(BENCH_N) $(PY) -m pytest benchmarks/ --benchmark-only

# Regenerate BENCH_engine.json (exits non-zero on any engine/exact
# output mismatch or a fast-resolved rate below 0.99).
bench-engine:
	$(PY) tools/bench_engine.py

# Read-side (decimal→binary) bench only: tiered reader vs the exact
# round_rational fallback, printed to stdout; gates on mismatches,
# fast-resolved >= 0.95 and read_many speedup >= 2x.
bench-reader:
	$(PY) tools/bench_engine.py --reader

# Bulk serving-layer bench only: dedup-interning columnar pipeline vs
# the scalar batch APIs on duplicate-bearing corpora, printed to
# stdout; gates on byte identity always, and (full runs) >= 2x on the
# flat corpus with a larger zipfian win.  QUICK=--quick for the CI
# smoke lane.
bench-bulk:
	$(PY) tools/bench_engine.py --bulk $(QUICK)

# Byte-plane pipeline bench only: parse_buffer/format_buffer MB/s vs
# the row-at-a-time path, printed to stdout; gates on byte/bit identity
# always, and (full runs) >= 1.3x on the parse leg and the combined
# pipeline.  QUICK=--quick for the CI smoke lane.
bench-buffer:
	$(PY) tools/bench_engine.py --buffer $(QUICK)

# Warm-start bench only: engine construction time and first-10k-request
# latency, warm (snapshot) vs cold, printed to stdout; gates on byte
# identity and a clean restore always, warm-below-cold first-10k on
# full runs.  QUICK=--quick for the CI smoke lane.  See
# docs/warmstart.md.
bench-warm:
	$(PY) tools/bench_engine.py --warm $(QUICK)

# Contender-lane bench only: Grisu3-first vs Schubfach-first vs
# Schubfach-only write orderings (and window/lemire read orderings)
# raced per corpus, printed to stdout; gates on byte identity, a zero
# bail rate on the Schubfach lanes and zero exact-tier fallbacks on
# the Lemire lanes — all correctness gates, binding even with
# QUICK=--quick.  See docs/contenders.md.
bench-contenders:
	$(PY) tools/bench_engine.py --contenders $(QUICK)

# Build a warm-start snapshot (binary16/32/64 tables + donor memo +
# top-512 zipf-head hot dictionary) into warm.snap; consume it with
# Engine(snapshot=...), BulkPool(snapshot=...) or --snapshot on the
# CLI/daemon.
snapshot:
	$(PY) tools/warm_snapshot.py -o warm.snap

# Serving-daemon bench: open-loop Poisson load against a loopback
# daemon, p50/p95/p99 + throughput, plus a chaos leg that kills shards
# mid-traffic; regenerates BENCH_serve.json.  Gates on byte identity
# and fault accounting always, latency SLOs and the chaos p99
# degradation bound on full runs.  QUICK=--quick for the CI smoke lane.
bench-serve:
	$(PY) tools/bench_serve.py $(QUICK) -o BENCH_serve.json

# PR-lane serving smoke: wire conformance + lifecycle + chaos tests,
# then the load-gen bench's identity gates on a short fixed-seed run.
serve-smoke:
	$(PY) -m pytest tests/serve/test_protocol.py tests/serve/test_daemon.py tests/serve/test_daemon_faults.py -q
	$(PY) tools/bench_serve.py --quick -o /dev/null
	$(PY) -m repro.verify --serve --n 2000 --seed 0 --formats binary64

# PR-lane control-plane smoke: breaker/admission/hedge/observer unit and
# wire tests, the quick bench gates (which include the controlled leg's
# identity and accounting gates), then the fixed-seed control battery.
# See docs/robustness.md#the-control-plane.
control-smoke:
	$(PY) -m pytest tests/serve/test_control.py -q
	$(PY) tools/bench_serve.py --quick -o /dev/null
	$(PY) -m repro.verify --control --n 2000 --seed 0 --formats binary64

# Quick correctness smoke of the engine (what CI runs).
smoke:
	$(PY) tools/bench_engine.py --quick -o /dev/null

ci: test smoke

reports:
	REPRO_BENCH_N=$(BENCH_N) $(PY) -m pytest benchmarks/ -s
	$(PY) tools/regenerate_reports.py 1000

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PY) $$ex > /dev/null || exit 1; \
	done; echo "all examples ran clean"

verify:
	$(PY) examples/self_check.py 200

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
